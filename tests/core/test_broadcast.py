"""Tests for core.broadcast — push-pull epidemic spreading and the
MAX-aggregation equivalence claim (§1.1)."""

import math

import numpy as np
import pytest

from repro.core import (
    MaxAggregate,
    PushPullBroadcast,
    expected_rounds_push,
    expected_rounds_push_pull,
    spread_trajectory_deterministic,
)
from repro.errors import ConfigurationError
from repro.simulator.cycle_sim import CycleSimulator
from repro.topology import AdjacencyTopology, CompleteTopology, RingTopology


class TestBroadcastBasics:
    def test_initial_state(self):
        b = PushPullBroadcast(CompleteTopology(10), origin=3, seed=1)
        assert b.informed_count == 1
        assert b.informed_mask[3]
        assert not b.is_complete()

    def test_origin_validated(self):
        with pytest.raises(ConfigurationError):
            PushPullBroadcast(CompleteTopology(5), origin=5)

    def test_monotone_spread(self):
        b = PushPullBroadcast(CompleteTopology(200), seed=2)
        counts = [b.informed_count]
        for _ in range(10):
            b.run_cycle()
            counts.append(b.informed_count)
        assert all(y >= x for x, y in zip(counts, counts[1:]))

    def test_run_until_complete(self):
        b = PushPullBroadcast(CompleteTopology(500), seed=3)
        trajectory = b.run_until_complete()
        assert trajectory[0] == 1
        assert trajectory[-1] == 500
        assert b.is_complete()

    def test_disconnected_raises(self):
        topo = AdjacencyTopology([[1], [0], [3], [2]])
        b = PushPullBroadcast(topo, origin=0, seed=4)
        with pytest.raises(ConfigurationError):
            b.run_until_complete(max_cycles=50)

    def test_deterministic(self):
        a = PushPullBroadcast(CompleteTopology(300), seed=9)
        b = PushPullBroadcast(CompleteTopology(300), seed=9)
        assert a.run_until_complete() == b.run_until_complete()


class TestRoundComplexity:
    @pytest.mark.parametrize("n", [1000, 10000])
    def test_rounds_in_theoretical_window(self, n):
        rounds = [
            len(PushPullBroadcast(CompleteTopology(n), seed=s)
                .run_until_complete()) - 1
            for s in range(5)
        ]
        mean_rounds = np.mean(rounds)
        # lower envelope: pure tripling; upper envelope: push-only bound
        assert mean_rounds >= math.log(n, 3) - 1
        assert mean_rounds <= expected_rounds_push(n)

    def test_push_pull_estimate_close(self):
        estimate = expected_rounds_push_pull(10000)
        rounds = [
            len(PushPullBroadcast(CompleteTopology(10000), seed=s)
                .run_until_complete()) - 1
            for s in range(5)
        ]
        assert abs(np.mean(rounds) - estimate) < 4

    def test_edge_cases(self):
        assert expected_rounds_push(1) == 0.0
        assert expected_rounds_push_pull(1) == 0.0
        with pytest.raises(ConfigurationError):
            expected_rounds_push(0)

    def test_ring_is_linear_not_logarithmic(self):
        """Structured topologies break the epidemic speedup: on a ring
        information travels a bounded distance per cycle."""
        n = 100
        trajectory = PushPullBroadcast(
            RingTopology(n, 2), seed=5
        ).run_until_complete(max_cycles=500)
        assert len(trajectory) - 1 > 2 * math.log2(n)


class TestMeanField:
    def test_trajectory_monotone_to_one(self):
        trajectory = spread_trajectory_deterministic(10000)
        assert all(y >= x for x, y in zip(trajectory, trajectory[1:]))
        assert trajectory[-1] > 1 - 1e-3

    def test_matches_simulation_phase_width(self):
        """Early-phase randomness time-shifts individual runs, so we
        compare the *shape*: the number of cycles spent between 10 % and
        90 % informed must agree between mean field and simulation."""
        n = 20000

        def width(fractions):
            inside = [f for f in fractions if 0.10 <= f <= 0.90]
            return len(inside)

        b = PushPullBroadcast(CompleteTopology(n), seed=6)
        simulated = [c / n for c in b.run_until_complete()]
        predicted = spread_trajectory_deterministic(n)
        assert abs(width(simulated) - width(predicted)) <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spread_trajectory_deterministic(1)


class TestMaxEquivalence:
    def test_max_spreading_equals_broadcast(self):
        """§1.1: MAX aggregation *is* push-pull broadcast of the maximum.
        Drive both with the same seed and compare reached-set sizes."""
        n = 400
        values = np.zeros(n)
        values[7] = 1.0  # unique maximum at node 7
        sim = CycleSimulator(CompleteTopology(n), values,
                             aggregate=MaxAggregate(), seed=123)
        broadcast = PushPullBroadcast(CompleteTopology(n), origin=7, seed=123)
        for _ in range(12):
            sim.run_cycle()
            broadcast.run_cycle()
            reached_max = int((sim.values == 1.0).sum())
            assert reached_max == broadcast.informed_count

    def test_max_reaches_everyone_fast(self):
        n = 1000
        values = np.random.default_rng(1).normal(0, 1, n)
        sim = CycleSimulator(CompleteTopology(n), values,
                             aggregate=MaxAggregate(), seed=2)
        sim.run(int(expected_rounds_push(n)) + 3)
        assert np.all(sim.values == values.max())
