"""Tests for core.size_estimation — the §4 adaptive counting service."""

import numpy as np
import pytest

from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.errors import ConfigurationError
from repro.failures import ConstantRateChurn, NoChurn, OscillatingChurn


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SizeEstimationConfig(cycles=0)
        with pytest.raises(ConfigurationError):
            SizeEstimationConfig(cycles_per_epoch=0)
        with pytest.raises(ConfigurationError):
            SizeEstimationConfig(expected_leaders=0)
        with pytest.raises(ConfigurationError):
            SizeEstimationConfig(initial_size=1)


class TestStaticNetwork:
    def test_estimates_exact_size(self):
        config = SizeEstimationConfig(
            cycles=30, cycles_per_epoch=30, initial_size=500, seed=1
        )
        experiment = SizeEstimationExperiment(config)
        reports = experiment.run()
        assert len(reports) == 1
        report = reports[0]
        assert report.size_at_start == 500
        assert report.estimate_mean == pytest.approx(500, rel=1e-4)
        assert report.estimate_min == pytest.approx(500, rel=1e-4)
        assert report.estimate_max == pytest.approx(500, rel=1e-4)

    def test_every_node_reports(self):
        config = SizeEstimationConfig(
            cycles=30, cycles_per_epoch=30, initial_size=200, seed=2
        )
        reports = SizeEstimationExperiment(config).run()
        assert reports[0].reporting_nodes == 200

    def test_multiple_epochs(self):
        config = SizeEstimationConfig(
            cycles=90, cycles_per_epoch=30, initial_size=300, seed=3
        )
        reports = SizeEstimationExperiment(config).run()
        assert [r.epoch for r in reports] == [0, 1, 2]
        for report in reports:
            assert report.relative_error < 1e-4

    def test_deterministic(self):
        config = SizeEstimationConfig(
            cycles=60, cycles_per_epoch=30, initial_size=100, seed=4
        )
        a = SizeEstimationExperiment(config).run()
        b = SizeEstimationExperiment(config).run()
        assert [r.estimate_mean for r in a] == [r.estimate_mean for r in b]

    def test_multiple_leaders_supported(self):
        config = SizeEstimationConfig(
            cycles=30,
            cycles_per_epoch=30,
            initial_size=400,
            expected_leaders=5.0,
            seed=5,
        )
        experiment = SizeEstimationExperiment(config)
        reports = experiment.run()
        assert reports[0].instance_count >= 1
        assert reports[0].estimate_mean == pytest.approx(400, rel=1e-4)

    def test_short_epoch_inaccurate(self):
        """An epoch far shorter than the convergence horizon yields a
        wide estimate range — the §4 accuracy/epoch-length trade-off."""
        config = SizeEstimationConfig(
            cycles=4, cycles_per_epoch=4, initial_size=500, seed=6
        )
        report = SizeEstimationExperiment(config).run()[0]
        spread = report.estimate_max - report.estimate_min
        assert spread > 100  # far from converged


class TestChurn:
    def test_growth_tracked_with_one_epoch_lag(self):
        config = SizeEstimationConfig(
            cycles=120, cycles_per_epoch=30, initial_size=500, seed=7
        )
        churn = ConstantRateChurn(joins_per_cycle=5, leaves_per_cycle=0)
        experiment = SizeEstimationExperiment(config, churn=churn)
        reports = experiment.run()
        # estimates reflect the epoch-start size, not the inflated end size
        for report in reports:
            assert report.estimate_mean == pytest.approx(
                report.size_at_start, rel=0.02
            )
            assert report.size_at_end > report.size_at_start

    def test_departures_bias_estimate(self):
        config = SizeEstimationConfig(
            cycles=30, cycles_per_epoch=30, initial_size=800, seed=8
        )
        churn = ConstantRateChurn(joins_per_cycle=0, leaves_per_cycle=4)
        report = SizeEstimationExperiment(config, churn=churn).run()[0]
        # leavers remove mass, so estimates drift from the start size but
        # stay within the epoch's size envelope (order of magnitude)
        assert report.size_at_end < report.size_at_start
        assert report.relative_error < 0.5

    def test_oscillating_trace_recorded(self):
        config = SizeEstimationConfig(
            cycles=100, cycles_per_epoch=20, initial_size=1000, seed=9
        )
        churn = OscillatingChurn(1000, 100, 100, fluctuation=2)
        experiment = SizeEstimationExperiment(config, churn=churn)
        experiment.run()
        trace = np.asarray(experiment.size_trace)
        assert len(trace) == 100
        assert trace.max() > 1050
        assert trace.min() < 950

    def test_estimate_follows_oscillation(self):
        config = SizeEstimationConfig(
            cycles=200, cycles_per_epoch=20, initial_size=1000, seed=10
        )
        churn = OscillatingChurn(1000, 150, 200, fluctuation=1)
        reports = SizeEstimationExperiment(config, churn=churn).run()
        estimates = np.array([r.estimate_mean for r in reports])
        starts = np.array([r.size_at_start for r in reports])
        correlation = np.corrcoef(estimates, starts)[0, 1]
        assert correlation > 0.9

    def test_joiners_do_not_report(self):
        config = SizeEstimationConfig(
            cycles=30, cycles_per_epoch=30, initial_size=300, seed=11
        )
        churn = ConstantRateChurn(joins_per_cycle=10, leaves_per_cycle=0)
        experiment = SizeEstimationExperiment(config, churn=churn)
        report = experiment.run()[0]
        assert report.reporting_nodes == 300  # none of the ~300 joiners
        assert experiment.current_size == pytest.approx(600, abs=10)
