"""Tests for core.service — the AggregationService facade."""

import numpy as np
import pytest

from repro.core import AggregationService
from repro.errors import ConfigurationError
from repro.topology import CompleteTopology, RandomRegularTopology


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(4).lognormal(2.0, 0.5, 600)


@pytest.fixture(scope="module")
def report(values):
    service = AggregationService(CompleteTopology(600), values, seed=5)
    return service.run(cycles=30)


class TestEstimates:
    def test_mean(self, report, values):
        assert report.mean == pytest.approx(values.mean(), rel=1e-6)

    def test_max_exact(self, report, values):
        assert report.maximum == values.max()

    def test_min_exact(self, report, values):
        assert report.minimum == values.min()

    def test_network_size(self, report):
        assert report.network_size == pytest.approx(600, rel=1e-3)

    def test_total(self, report, values):
        assert report.total == pytest.approx(values.sum(), rel=1e-3)

    def test_value_variance(self, report, values):
        assert report.value_variance == pytest.approx(values.var(), rel=1e-3)

    def test_network_agreement(self, report):
        assert report.variance_across_nodes < 1e-8

    def test_cycles_recorded(self, report):
        assert report.cycles == 30

    def test_as_dict_roundtrip(self, report):
        payload = report.as_dict()
        assert payload["mean"] == report.mean
        assert set(payload) >= {"mean", "maximum", "network_size", "total"}


class TestConfiguration:
    def test_value_count_checked(self):
        with pytest.raises(ConfigurationError):
            AggregationService(CompleteTopology(5), [1.0])

    def test_cycles_validated(self, values):
        service = AggregationService(CompleteTopology(600), values, seed=1)
        with pytest.raises(ConfigurationError):
            service.run(cycles=0)

    def test_probe_node_validated(self, values):
        service = AggregationService(CompleteTopology(600), values, seed=1)
        with pytest.raises(ConfigurationError):
            service.run(cycles=5, probe_node=600)

    def test_different_probe_nodes_agree(self, values):
        service = AggregationService(CompleteTopology(600), values, seed=6)
        a = service.run(cycles=30, probe_node=0)
        service2 = AggregationService(CompleteTopology(600), values, seed=6)
        b = service2.run(cycles=30, probe_node=599)
        assert a.mean == pytest.approx(b.mean, rel=1e-6)

    def test_sparse_topology(self, values):
        topology = RandomRegularTopology(600, 10, seed=7)
        service = AggregationService(topology, values, seed=8)
        report = service.run(cycles=40)
        assert report.mean == pytest.approx(values.mean(), rel=1e-4)

    def test_with_loss_still_reasonable(self, values):
        service = AggregationService(
            CompleteTopology(600), values, loss_probability=0.2, seed=9
        )
        report = service.run(cycles=40)
        assert report.mean == pytest.approx(values.mean(), rel=0.02)
