"""Tests for core.network — the event-driven GossipNetwork."""

import numpy as np
import pytest

from repro.avg.theory import RATE_RAND, RATE_SEQ
from repro.core import (
    ConstantWaiting,
    ExponentialWaiting,
    GossipNetwork,
    MaxAggregate,
)
from repro.errors import ConfigurationError
from repro.simulator import BernoulliLoss, ConstantLatency
from repro.topology import CompleteTopology


def make_network(n=200, seed=11, **kwargs):
    topo = CompleteTopology(n)
    values = np.random.default_rng(3).normal(10.0, 4.0, n)
    return GossipNetwork(topo, values, seed=seed, **kwargs)


class TestConstruction:
    def test_value_count_checked(self):
        with pytest.raises(ConfigurationError):
            GossipNetwork(CompleteTopology(5), [1.0, 2.0])

    def test_defaults(self):
        net = make_network(n=10)
        assert net.waiting.delta_t == 1.0
        assert net.aggregate.name == "mean"

    def test_deterministic_given_seed(self):
        a = make_network(seed=5)
        b = make_network(seed=5)
        a.run_cycles(3)
        b.run_cycles(3)
        assert np.array_equal(a.approximations(), b.approximations())


class TestConvergence:
    def test_variance_decreases(self):
        net = make_network()
        v0 = net.variance()
        net.run_cycles(5)
        assert net.variance() < v0 * 0.05

    def test_mean_conserved_no_loss(self):
        net = make_network()
        true = net.true_mean()
        net.run_cycles(10)
        assert net.approximations().mean() == pytest.approx(true, abs=1e-9)

    def test_all_nodes_learn_average(self):
        net = make_network()
        net.run_cycles(30)
        assert net.max_error() < 1e-6

    def test_constant_waiting_rate_near_seq(self):
        """Constant ∆t waiting == every node initiates once per cycle ==
        GETPAIR_SEQ's 1/(2√e) per-cycle reduction."""
        net = make_network(n=1000)
        rates = []
        previous = net.variance()
        for _ in range(8):
            net.run_cycles(1)
            current = net.variance()
            rates.append(current / previous)
            previous = current
        geo = float(np.exp(np.mean(np.log(rates))))
        assert geo == pytest.approx(RATE_SEQ, rel=0.25)

    def test_exponential_waiting_rate_near_rand(self):
        """Exponential waits == Poisson pair process == GETPAIR_RAND's
        1/e per-cycle reduction (§3.3.2)."""
        net = make_network(n=1000, waiting=ExponentialWaiting(1.0))
        rates = []
        previous = net.variance()
        for _ in range(8):
            net.run_cycles(1)
            current = net.variance()
            rates.append(current / previous)
            previous = current
        geo = float(np.exp(np.mean(np.log(rates))))
        assert geo == pytest.approx(RATE_RAND, rel=0.25)

    def test_max_aggregate_floods(self):
        net = make_network(aggregate=MaxAggregate())
        true_max = max(node.value for node in net.nodes)
        net.run_cycles(15)
        assert np.all(net.approximations() == true_max)


class TestLatencyAndLoss:
    def test_latency_still_converges(self):
        net = make_network(latency=ConstantLatency(0.05))
        net.run_cycles(25)
        assert net.variance() < 1e-6

    def test_loss_preserves_convergence_direction(self):
        net = make_network(loss=BernoulliLoss(0.2))
        v0 = net.variance()
        net.run_cycles(10)
        assert net.variance() < v0 * 0.1

    def test_loss_can_break_mass_conservation(self):
        """A lost REPLY makes the exchange asymmetric: the responder
        updated but the initiator did not, so the global mean drifts.
        This is the §1.4 message-loss effect the companion TR handles."""
        drift = []
        for seed in range(5):
            net = make_network(seed=seed, loss=BernoulliLoss(0.3))
            true = net.true_mean()
            net.run_cycles(20)
            drift.append(abs(net.approximations().mean() - true))
        assert max(drift) > 1e-9  # some drift occurs

    def test_loss_counters(self):
        net = make_network(loss=BernoulliLoss(0.5))
        net.run_cycles(5)
        assert net.transport.lost_count > 0


class TestCrashes:
    def test_crashed_nodes_excluded_from_stats(self):
        net = make_network(n=50)
        net.crash_nodes(range(10))
        assert len(net.approximations()) == 40

    def test_survivors_converge_after_crash(self):
        net = make_network(n=100)
        net.run_cycles(2)
        net.crash_nodes(range(30))
        net.run_cycles(20)
        assert net.variance() < 1e-8

    def test_select_neighbor_avoids_dead(self):
        net = make_network(n=10)
        net.crash_nodes(range(1, 9))  # only 0 and 9 alive
        rng = np.random.default_rng(0)
        for _ in range(20):
            peer = net.select_neighbor(0, rng)
            assert peer == 9

    def test_select_neighbor_none_when_all_dead(self):
        net = make_network(n=3)
        net.crash_nodes([1, 2])
        rng = np.random.default_rng(0)
        assert net.select_neighbor(0, rng) is None

    def test_crash_all_but_one_stable(self):
        net = make_network(n=5)
        net.crash_nodes([1, 2, 3, 4])
        net.run_cycles(3)  # must not raise
        assert net.variance() == 0.0
