"""Tests for adaptive leader election (§4: leader probability 'can also
depend on the previous approximation of network size')."""

import numpy as np
import pytest

from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.failures import ConstantRateChurn


class TestAdaptiveLeaders:
    def test_static_network_equivalent_accuracy(self):
        base = dict(
            cycles=90, cycles_per_epoch=30, initial_size=400,
            expected_leaders=2.0,
        )
        fixed = SizeEstimationExperiment(
            SizeEstimationConfig(seed=1, **base)
        ).run()
        adaptive = SizeEstimationExperiment(
            SizeEstimationConfig(seed=1, adaptive_leaders=True, **base)
        ).run()
        for fixed_report, adaptive_report in zip(fixed, adaptive):
            assert fixed_report.relative_error < 1e-3
            assert adaptive_report.relative_error < 1e-3

    def test_adaptive_probability_tracks_growth(self):
        """With adaptive leaders the expected instance count stays near
        the target even while the network grows: the election
        denominator follows the (lagged) estimate."""
        config = SizeEstimationConfig(
            cycles=300,
            cycles_per_epoch=30,
            initial_size=500,
            expected_leaders=4.0,
            adaptive_leaders=True,
            seed=3,
        )
        churn = ConstantRateChurn(joins_per_cycle=5, leaves_per_cycle=0)
        experiment = SizeEstimationExperiment(config, churn=churn)
        reports = experiment.run()
        counts = [report.instance_count for report in reports]
        # instance counts hover around expected_leaders with the right
        # order of magnitude (Poisson-4 spread), never exploding
        assert 1 <= min(counts)
        assert max(counts) <= 16
        assert 2.0 <= np.mean(counts) <= 8.0

    def test_first_epoch_falls_back_to_true_size(self):
        """No previous estimate exists at epoch 0; the adaptive mode
        must still elect sensibly (falls back to the participant count)."""
        config = SizeEstimationConfig(
            cycles=30, cycles_per_epoch=30, initial_size=300,
            adaptive_leaders=True, seed=5,
        )
        reports = SizeEstimationExperiment(config).run()
        assert len(reports) == 1
        assert reports[0].instance_count >= 1
        assert reports[0].relative_error < 1e-3
