"""Tests for core.protocol — waiting strategies and the node state
machine (via a small GossipNetwork)."""

import numpy as np
import pytest

from repro.core import (
    ConstantWaiting,
    ExponentialWaiting,
    GossipNetwork,
    MeanAggregate,
    PushMessage,
    ReplyMessage,
)
from repro.errors import ConfigurationError
from repro.topology import CompleteTopology


class TestWaitingStrategies:
    def test_constant_next_wait(self, rng):
        strategy = ConstantWaiting(2.5)
        assert strategy.next_wait(rng) == 2.5
        assert strategy.delta_t == 2.5

    def test_constant_first_wait_in_cycle(self, rng):
        strategy = ConstantWaiting(2.0)
        waits = [strategy.first_wait(rng) for _ in range(200)]
        assert all(0.0 <= w < 2.0 for w in waits)
        assert np.std(waits) > 0  # actually random

    def test_exponential_mean(self, rng):
        strategy = ExponentialWaiting(1.5)
        waits = [strategy.next_wait(rng) for _ in range(5000)]
        assert np.mean(waits) == pytest.approx(1.5, rel=0.1)

    def test_nonpositive_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantWaiting(0.0)
        with pytest.raises(ConfigurationError):
            ExponentialWaiting(-1.0)


class TestNodeStateMachine:
    def make_net(self, n=10, **kwargs):
        topo = CompleteTopology(n)
        values = np.arange(n, dtype=float)
        return GossipNetwork(topo, values, seed=7, **kwargs)

    def test_initial_approximation_is_value(self):
        net = self.make_net()
        for node in net.nodes:
            assert node.approximation == node.value

    def test_push_updates_both_sides(self):
        net = self.make_net(n=2)
        a, b = net.nodes
        # manual exchange: a pushes its approximation to b
        b.handle_message(0, PushMessage(a.approximation))
        net.engine.run_until(0.0)  # deliver b's reply to a
        a_expected = (0.0 + 1.0) / 2
        assert b.approximation == a_expected

    def test_reply_uses_pre_exchange_value(self):
        """Figure 1: the passive side replies with x_j *before* updating."""
        net = self.make_net(n=2)
        inbox = []
        net.transport._deliver = lambda msg: inbox.append(msg)
        net.nodes[1].handle_message(0, PushMessage(0.0))
        net.engine.run_until(0.0)
        reply = [m for m in inbox if isinstance(m.payload, ReplyMessage)][0]
        assert reply.payload.approximation == 1.0  # old x_j, not 0.5

    def test_crashed_node_ignores_messages(self):
        net = self.make_net(n=3)
        victim = net.nodes[2]
        victim.crash()
        before = victim.approximation
        victim.handle_message(0, PushMessage(99.0))
        assert victim.approximation == before
        assert not victim.alive

    def test_unknown_payload_rejected(self):
        net = self.make_net(n=2)
        with pytest.raises(ConfigurationError):
            net.nodes[0].handle_message(1, "garbage")

    def test_counters(self):
        net = self.make_net(n=20)
        net.run_cycles(5)
        for node in net.nodes:
            assert node.initiated_count == 5
        total_responses = sum(n.responded_count for n in net.nodes)
        total_initiations = sum(n.initiated_count for n in net.nodes)
        assert total_responses == total_initiations
