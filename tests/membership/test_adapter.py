"""Tests for membership.adapter — membership as a live topology."""

import numpy as np
import pytest

from repro.avg import GetPairSeq, RATE_SEQ, ValueVector, run_avg
from repro.errors import TopologyError
from repro.membership import (
    MembershipTopologyAdapter,
    NewscastMembership,
    StaticMembership,
)
from repro.simulator.cycle_sim import CycleSimulator
from repro.topology import RingTopology


class TestAdapterOverStatic:
    @pytest.fixture
    def adapter(self):
        return MembershipTopologyAdapter(StaticMembership(RingTopology(10, 2)))

    def test_neighbors_match_views(self, adapter):
        assert adapter.neighbors(0).tolist() == [1, 9]
        assert adapter.degree(0) == 2

    def test_random_neighbor(self, adapter, rng):
        assert adapter.random_neighbor(0, rng) in (1, 9)

    def test_random_edge(self, adapter, rng):
        i, j = adapter.random_edge(rng)
        assert j in adapter.neighbors(i).tolist()

    def test_edge_count_directed_entries(self, adapter):
        assert adapter.edge_count() == 20  # 10 nodes x view of 2

    def test_node_range_checked(self, adapter):
        with pytest.raises(TopologyError):
            adapter.neighbors(10)


class TestAdapterOverNewscast:
    def test_views_change_after_advance(self, rng):
        membership = NewscastMembership(40, view_size=5, seed=1)
        adapter = MembershipTopologyAdapter(membership)
        before = adapter.neighbors(0).tolist()
        for _ in range(3):
            adapter.advance_cycle(rng)
        after = adapter.neighbors(0).tolist()
        assert before != after

    def test_avg_runs_over_adapter(self):
        """The theoretical AVG layer runs unchanged over live gossip
        views, at (approximately) the random-overlay rate."""
        membership = NewscastMembership(800, view_size=20, seed=2)
        adapter = MembershipTopologyAdapter(membership)
        vector = ValueVector.gaussian(800, seed=3)
        result = run_avg(vector, GetPairSeq(adapter), 12, seed=4)
        assert result.geometric_mean_reduction() == pytest.approx(
            RATE_SEQ, rel=0.2
        )

    def test_cycle_simulator_over_adapter(self):
        membership = NewscastMembership(300, view_size=10, seed=5)
        adapter = MembershipTopologyAdapter(membership)
        values = np.random.default_rng(6).normal(5, 2, 300)
        sim = CycleSimulator(adapter, values, seed=7)
        result = sim.run(20)
        assert result.variance_array[-1] < result.variance_array[0] * 1e-6
        assert sim.mean() == pytest.approx(values.mean(), abs=1e-9)
