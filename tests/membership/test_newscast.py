"""Tests for membership.newscast — the gossip peer-sampling substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.membership import NewscastMembership
from repro.topology import AdjacencyTopology, is_connected


class TestConstruction:
    def test_view_sizes(self):
        membership = NewscastMembership(50, view_size=8, seed=1)
        for node in range(50):
            assert len(membership.view(node)) == 8

    def test_view_excludes_self(self):
        membership = NewscastMembership(30, view_size=5, seed=2)
        for node in range(30):
            assert node not in membership.view(node)

    def test_view_size_capped(self):
        membership = NewscastMembership(4, view_size=20, seed=3)
        assert membership.view_size == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NewscastMembership(1)
        with pytest.raises(ConfigurationError):
            NewscastMembership(10, view_size=0)


class TestDynamics:
    def test_views_change_over_cycles(self, rng):
        membership = NewscastMembership(40, view_size=5, seed=4)
        before = [tuple(membership.view(n)) for n in range(40)]
        for _ in range(3):
            membership.advance_cycle(rng)
        after = [tuple(membership.view(n)) for n in range(40)]
        assert before != after

    def test_views_stay_valid(self, rng):
        membership = NewscastMembership(30, view_size=5, seed=5)
        for _ in range(10):
            membership.advance_cycle(rng)
        for node in range(30):
            view = membership.view(node)
            assert len(view) == 5
            assert node not in view
            assert all(0 <= peer < 30 for peer in view)

    def test_random_partner_from_view(self, rng):
        membership = NewscastMembership(20, view_size=4, seed=6)
        for _ in range(40):
            assert membership.random_partner(3, rng) in membership.view(3)

    def test_overlay_connected_after_mixing(self, rng):
        membership = NewscastMembership(60, view_size=6, seed=7)
        for _ in range(10):
            membership.advance_cycle(rng)
        edges = set()
        for node in range(60):
            for peer in membership.view(node):
                edges.add((min(node, peer), max(node, peer)))
        topo = AdjacencyTopology.from_edges(60, edges)
        assert is_connected(topo)

    def test_in_degree_roughly_balanced(self, rng):
        """No starving nodes, no dominant hubs — the 'approximately
        random' property the aggregation layer needs."""
        membership = NewscastMembership(100, view_size=10, seed=8)
        for _ in range(20):
            membership.advance_cycle(rng)
        in_degrees = membership.in_degree_distribution()
        assert in_degrees.min() >= 1
        assert in_degrees.max() <= 6 * in_degrees.mean()
