"""Tests for membership.static."""

import pytest

from repro.membership import StaticMembership
from repro.topology import RingTopology


@pytest.fixture
def membership():
    return StaticMembership(RingTopology(10, 2))


class TestStaticMembership:
    def test_n(self, membership):
        assert membership.n == 10

    def test_view_matches_topology(self, membership):
        assert membership.view(0) == [1, 9]

    def test_random_partner_in_view(self, membership, rng):
        for _ in range(50):
            assert membership.random_partner(0, rng) in (1, 9)

    def test_advance_cycle_is_noop(self, membership, rng):
        before = membership.view(3)
        membership.advance_cycle(rng)
        assert membership.view(3) == before

    def test_topology_property(self, membership):
        assert membership.topology.n == 10
