"""Tests for the gossip failure detector ([15] substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.membership import GossipFailureDetector


class TestValidation:
    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            GossipFailureDetector(1)

    def test_horizon_positive(self):
        with pytest.raises(ConfigurationError):
            GossipFailureDetector(10, suspicion_cycles=0)

    def test_crash_range(self):
        detector = GossipFailureDetector(10, seed=1)
        with pytest.raises(ConfigurationError):
            detector.crash([10])

    def test_suspects_range(self):
        detector = GossipFailureDetector(10, seed=1)
        with pytest.raises(ConfigurationError):
            detector.suspects(10)

    def test_negative_cycles(self):
        detector = GossipFailureDetector(10, seed=1)
        with pytest.raises(ConfigurationError):
            detector.run(-1)


class TestAccuracy:
    def test_no_false_suspicions_in_healthy_network(self):
        detector = GossipFailureDetector(60, suspicion_cycles=15, seed=2)
        detector.run(60)
        assert detector.false_suspicion_count() == 0

    def test_trusted_peers_full_when_healthy(self):
        detector = GossipFailureDetector(30, suspicion_cycles=15, seed=3)
        detector.run(40)
        assert len(detector.trusted_peers(0)) == 29

    def test_never_suspects_self(self):
        detector = GossipFailureDetector(20, suspicion_cycles=2, seed=4)
        detector.run(30)
        for node in range(20):
            assert node not in detector.suspects(node)


class TestCompleteness:
    def test_crashed_node_eventually_suspected_by_all(self):
        detector = GossipFailureDetector(60, suspicion_cycles=12, seed=5)
        detector.run(20)  # warm-up: heartbeats circulating
        detector.crash([7])
        detector.run(40)
        assert detector.detection_complete([7])

    def test_mass_crash_detected(self):
        detector = GossipFailureDetector(80, suspicion_cycles=12, seed=6)
        detector.run(20)
        victims = list(range(0, 80, 4))  # 25 %
        detector.crash(victims)
        detector.run(50)
        assert detector.detection_complete(victims)

    def test_detection_incomplete_before_horizon(self):
        detector = GossipFailureDetector(40, suspicion_cycles=25, seed=7)
        detector.run(10)
        detector.crash([3])
        detector.run(5)  # << horizon
        assert not detector.detection_complete([3])

    def test_trusted_peers_excludes_crashed(self):
        detector = GossipFailureDetector(50, suspicion_cycles=10, seed=8)
        detector.run(15)
        detector.crash([1, 2])
        detector.run(40)
        trusted = detector.trusted_peers(0)
        assert 1 not in trusted
        assert 2 not in trusted
        assert len(trusted) == 47
