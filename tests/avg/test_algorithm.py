"""Tests for avg.algorithm — the instrumented AVG cycle runner."""

import numpy as np
import pytest

from repro.avg import (
    AvgAlgorithm,
    GetPairPerfectMatching,
    GetPairRand,
    GetPairSeq,
    ValueVector,
    run_avg,
)
from repro.errors import ConfigurationError
from repro.topology import CompleteTopology


@pytest.fixture
def topo():
    return CompleteTopology(200)


class TestRunBasics:
    def test_zero_cycles(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 0, seed=2)
        assert result.cycles == []
        assert result.variances.tolist() == [result.initial_variance]

    def test_negative_cycles_rejected(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        with pytest.raises(ConfigurationError):
            run_avg(vec, GetPairSeq(topo), -1)

    def test_size_mismatch_rejected(self, topo):
        vec = ValueVector.uniform(100, seed=1)
        with pytest.raises(ConfigurationError):
            run_avg(vec, GetPairSeq(topo), 1)

    def test_deterministic_given_seed(self, topo):
        a = ValueVector.uniform(200, seed=1)
        b = ValueVector.uniform(200, seed=1)
        run_avg(a, GetPairSeq(topo), 5, seed=9)
        run_avg(b, GetPairSeq(topo), 5, seed=9)
        assert np.array_equal(a.values, b.values)

    def test_mutates_vector_in_place(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        before = vec.snapshot()
        run_avg(vec, GetPairSeq(topo), 3, seed=2)
        assert not np.array_equal(before, vec.values)


class TestConservation:
    @pytest.mark.parametrize("selector_cls", [GetPairSeq, GetPairRand,
                                              GetPairPerfectMatching])
    def test_mean_conserved(self, topo, selector_cls):
        """ā_i ≡ ā_0 — the paper's 'no error introduced' invariant."""
        vec = ValueVector.gaussian(200, mean=5.0, seed=3)
        initial_mean = vec.mean
        run_avg(vec, selector_cls(topo), 10, seed=4)
        assert vec.mean == pytest.approx(initial_mean, abs=1e-12)

    def test_variance_never_increases(self, topo):
        vec = ValueVector.uniform(200, seed=5)
        result = run_avg(vec, GetPairSeq(topo), 15, seed=6)
        variances = result.variances
        assert np.all(np.diff(variances) <= 1e-15)

    def test_constant_vector_stays_constant(self, topo):
        vec = ValueVector.constant(200, 7.0)
        run_avg(vec, GetPairSeq(topo), 5, seed=7)
        assert np.allclose(vec.values, 7.0)


class TestCycleStats:
    def test_cycle_numbering(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 4, seed=2)
        assert [c.cycle for c in result.cycles] == [1, 2, 3, 4]

    def test_variance_chaining(self, topo):
        """cycle i's variance_after equals cycle i+1's variance_before."""
        vec = ValueVector.uniform(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 5, seed=2)
        for prev, nxt in zip(result.cycles, result.cycles[1:]):
            assert prev.variance_after == pytest.approx(nxt.variance_before)

    def test_reduction_ratio(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 3, seed=2)
        stats = result.cycles[0]
        assert stats.reduction == pytest.approx(
            stats.variance_after / stats.variance_before
        )

    def test_reduction_nan_when_converged(self):
        topo = CompleteTopology(10)
        vec = ValueVector.constant(10, 1.0)
        result = run_avg(vec, GetPairSeq(topo), 1, seed=1)
        assert np.isnan(result.cycles[0].reduction)

    def test_mean_phi_is_two(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 1, seed=2)
        assert result.cycles[0].mean_phi == pytest.approx(2.0)

    def test_overall_reduction(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 5, seed=2)
        assert result.overall_reduction == pytest.approx(
            result.variances[-1] / result.variances[0]
        )

    def test_geometric_mean_reduction_matches_overall(self, topo):
        vec = ValueVector.uniform(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 5, seed=2)
        geo = result.geometric_mean_reduction()
        assert geo**5 == pytest.approx(result.overall_reduction, rel=1e-9)

    def test_geometric_mean_reduction_ignores_converged_cycles(self):
        """Regression: a run that hits exact convergence mid-way used to
        report nan for the whole run (the 0.0 ratio survived the
        nan-filter and tripped the <= 0 guard). Converged-cycle ratios
        are dropped; the pre-convergence empirical rate remains."""
        from repro.avg import CycleStats, RunResult

        result = RunResult(initial_variance=4.0, initial_mean=1.0)
        result.cycles = [
            CycleStats(1, 4.0, 1.0, np.full(4, 2)),   # ratio 0.25
            CycleStats(2, 1.0, 0.25, np.full(4, 2)),  # ratio 0.25
            CycleStats(3, 0.25, 0.0, np.full(4, 2)),  # converged: ratio 0.0
            CycleStats(4, 0.0, 0.0, np.full(4, 2)),   # past it: ratio nan
        ]
        assert result.geometric_mean_reduction() == pytest.approx(0.25)

    def test_geometric_mean_reduction_nan_when_born_converged(self):
        """A run with no pre-convergence cycles still reports nan."""
        topo = CompleteTopology(10)
        vec = ValueVector.constant(10, 1.0)
        result = run_avg(vec, GetPairSeq(topo), 3, seed=1)
        assert np.isnan(result.geometric_mean_reduction())

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_backends_agree_bitwise(self, topo, backend):
        """The AvgAlgorithm thin shell inherits the kernel's backend
        equivalence contract: explicit backends match `auto` bitwise."""
        auto_vec = ValueVector.uniform(200, seed=4)
        auto = run_avg(auto_vec, GetPairSeq(topo), 6, seed=5, track_s=True)
        other_vec = ValueVector.uniform(200, seed=4)
        other = run_avg(other_vec, GetPairSeq(topo), 6, seed=5, track_s=True,
                        backend=backend)
        assert np.array_equal(auto_vec.values, other_vec.values)
        assert [c.variance_after for c in auto.cycles] == [
            c.variance_after for c in other.cycles
        ]
        assert [c.s_mean for c in auto.cycles] == [
            c.s_mean for c in other.cycles
        ]


class TestTrackS:
    def test_s_mean_recorded(self, topo):
        vec = ValueVector.gaussian(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 3, seed=2, track_s=True)
        assert all(c.s_mean is not None for c in result.cycles)

    def test_s_mean_absent_by_default(self, topo):
        vec = ValueVector.gaussian(200, seed=1)
        result = run_avg(vec, GetPairSeq(topo), 2, seed=2)
        assert all(c.s_mean is None for c in result.cycles)

    def test_theorem1_s_recursion_pm(self):
        """For PM, Theorem 1 is exact: E(s_{i+1}) = (1/4) E(s_i), and the
        s update is deterministic per pair, so the ratio holds exactly
        in every run."""
        topo = CompleteTopology(500)
        vec = ValueVector.gaussian(500, seed=3)
        result = run_avg(
            vec, GetPairPerfectMatching(topo), 3, seed=4, track_s=True
        )
        s0 = float(np.mean(ValueVector.gaussian(500, seed=3).values ** 2))
        assert result.cycles[0].s_mean == pytest.approx(s0 / 4, rel=1e-9)
        assert result.cycles[1].s_mean == pytest.approx(
            result.cycles[0].s_mean / 4, rel=1e-9
        )

    def test_theorem1_s_recursion_rand_statistically(self):
        """For RAND the s-mean ratio concentrates around 1/e."""
        topo = CompleteTopology(3000)
        vec = ValueVector.gaussian(3000, seed=5)
        result = run_avg(vec, GetPairRand(topo), 6, seed=6, track_s=True)
        s_means = [float(np.mean(vec.snapshot() ** 2))]  # placeholder
        ratios = []
        previous = None
        for stats in result.cycles:
            if previous is not None:
                ratios.append(stats.s_mean / previous)
            previous = stats.s_mean
        assert np.mean(ratios) == pytest.approx(1 / np.e, rel=0.1)
