"""Tests for avg.convergence — empirical rate extraction."""

import numpy as np
import pytest

from repro.avg import (
    cycles_until_threshold,
    empirical_reduction_rates,
    fit_geometric_rate,
)
from repro.errors import ConfigurationError


class TestReductionRates:
    def test_simple_ratios(self):
        rates = empirical_reduction_rates([8.0, 4.0, 1.0])
        assert rates.tolist() == [0.5, 0.25]

    def test_zero_previous_gives_nan(self):
        rates = empirical_reduction_rates([1.0, 0.0, 0.0])
        assert rates[0] == 0.0
        assert np.isnan(rates[1])

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_reduction_rates([1.0])


class TestGeometricFit:
    def test_exact_geometric_series(self):
        series = [100.0 * 0.3**i for i in range(10)]
        assert fit_geometric_rate(series) == pytest.approx(0.3)

    def test_noisy_series(self):
        rng = np.random.default_rng(1)
        series = [50.0 * 0.25**i * rng.uniform(0.9, 1.1) for i in range(12)]
        assert fit_geometric_rate(series) == pytest.approx(0.25, rel=0.05)

    def test_zeros_trimmed(self):
        series = [4.0, 1.0, 0.25, 0.0, 0.0]
        assert fit_geometric_rate(series) == pytest.approx(0.25)

    def test_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_geometric_rate([0.0, 0.0])

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_geometric_rate([1.0])


class TestCyclesUntilThreshold:
    def test_hits_threshold(self):
        series = [1.0, 0.3, 0.09, 0.027, 0.0081, 0.00243, 0.000729]
        assert cycles_until_threshold(series, 1e-3) == 6

    def test_never_reaches(self):
        assert cycles_until_threshold([1.0, 0.9, 0.8], 1e-3) == -1

    def test_first_cycle_counts(self):
        assert cycles_until_threshold([1.0, 0.0005], 1e-3) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            cycles_until_threshold([1.0, 0.5], 2.0)

    def test_zero_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            cycles_until_threshold([0.0, 0.0], 0.5)
