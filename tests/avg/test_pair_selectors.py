"""Tests for the GETPAIR implementations (§3.3)."""

import numpy as np
import pytest

from repro.avg import (
    GetPairPerfectMatching,
    GetPairPMRand,
    GetPairRand,
    GetPairSeq,
)
from repro.errors import PairSelectionError
from repro.topology import CompleteTopology, RingTopology


@pytest.fixture
def complete_20():
    return CompleteTopology(20)


class TestPerfectMatching:
    def test_phi_exactly_two(self, complete_20, rng):
        selector = GetPairPerfectMatching(complete_20)
        pairs = selector.cycle_pairs(rng)
        phi = selector.phi_counts(pairs)
        assert np.all(phi == 2)

    def test_pair_count_is_n(self, complete_20, rng):
        pairs = GetPairPerfectMatching(complete_20).cycle_pairs(rng)
        assert pairs.shape == (20, 2)

    def test_matchings_are_disjoint(self, complete_20, rng):
        pairs = GetPairPerfectMatching(complete_20).cycle_pairs(rng)
        first = {frozenset(p) for p in pairs[:10].tolist()}
        second = {frozenset(p) for p in pairs[10:].tolist()}
        assert len(first) == 10
        assert len(second) == 10
        assert first.isdisjoint(second)

    def test_each_half_is_perfect_matching(self, complete_20, rng):
        pairs = GetPairPerfectMatching(complete_20).cycle_pairs(rng)
        for half in (pairs[:10], pairs[10:]):
            nodes = half.ravel().tolist()
            assert sorted(nodes) == list(range(20))

    def test_odd_n_rejected(self):
        with pytest.raises(PairSelectionError):
            GetPairPerfectMatching(CompleteTopology(21))

    def test_sparse_topology_rejected(self):
        with pytest.raises(PairSelectionError):
            GetPairPerfectMatching(RingTopology(20, 2))

    def test_no_self_pairs(self, complete_20, rng):
        pairs = GetPairPerfectMatching(complete_20).cycle_pairs(rng)
        assert np.all(pairs[:, 0] != pairs[:, 1])


class TestRand:
    def test_no_self_pairs_complete(self, complete_20, rng):
        pairs = GetPairRand(complete_20).cycle_pairs(rng)
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_pair_count(self, complete_20, rng):
        assert GetPairRand(complete_20).cycle_pairs(rng).shape == (20, 2)

    def test_respects_sparse_topology(self, rng):
        ring = RingTopology(10, 2)
        pairs = GetPairRand(ring).cycle_pairs(rng)
        for i, j in pairs.tolist():
            assert ring.has_edge(i, j)

    def test_phi_mean_is_two(self, rng):
        topo = CompleteTopology(2000)
        selector = GetPairRand(topo)
        phi = selector.phi_counts(selector.cycle_pairs(rng))
        assert phi.mean() == pytest.approx(2.0)

    def test_phi_approximately_poisson2(self, rng):
        """Variance of Poisson(2) equals 2."""
        topo = CompleteTopology(5000)
        selector = GetPairRand(topo)
        phi = selector.phi_counts(selector.cycle_pairs(rng))
        assert phi.var() == pytest.approx(2.0, rel=0.15)

    def test_uniform_over_edges(self, rng):
        ring = RingTopology(6, 2)  # 6 edges
        selector = GetPairRand(ring)
        counts = {}
        for _ in range(600):
            for i, j in selector.cycle_pairs(rng).tolist():
                counts[frozenset((i, j))] = counts.get(frozenset((i, j)), 0) + 1
        values = np.array(list(counts.values()))
        assert len(counts) == 6
        assert values.std() / values.mean() < 0.15


class TestSeq:
    def test_every_node_initiates_once(self, complete_20, rng):
        pairs = GetPairSeq(complete_20).cycle_pairs(rng)
        assert pairs[:, 0].tolist() == list(range(20))

    def test_phi_at_least_one(self, complete_20, rng):
        selector = GetPairSeq(complete_20)
        phi = selector.phi_counts(selector.cycle_pairs(rng))
        assert np.all(phi >= 1)

    def test_phi_is_one_plus_poisson1(self, rng):
        topo = CompleteTopology(5000)
        selector = GetPairSeq(topo)
        phi = selector.phi_counts(selector.cycle_pairs(rng))
        assert phi.mean() == pytest.approx(2.0, abs=0.05)
        assert phi.var() == pytest.approx(1.0, rel=0.15)  # Var(1+Poisson(1)) = 1

    def test_partners_are_neighbors(self, rng):
        ring = RingTopology(12, 4)
        pairs = GetPairSeq(ring).cycle_pairs(rng)
        for i, j in pairs.tolist():
            assert ring.has_edge(i, j)

    def test_no_self_pairs(self, complete_20, rng):
        pairs = GetPairSeq(complete_20).cycle_pairs(rng)
        assert np.all(pairs[:, 0] != pairs[:, 1])


class TestPMRand:
    def test_pair_count(self, complete_20, rng):
        assert GetPairPMRand(complete_20).cycle_pairs(rng).shape == (20, 2)

    def test_first_half_is_perfect_matching(self, complete_20, rng):
        pairs = GetPairPMRand(complete_20).cycle_pairs(rng)
        nodes = pairs[:10].ravel().tolist()
        assert sorted(nodes) == list(range(20))

    def test_phi_at_least_one(self, complete_20, rng):
        selector = GetPairPMRand(complete_20)
        phi = selector.phi_counts(selector.cycle_pairs(rng))
        assert np.all(phi >= 1)

    def test_phi_matches_seq_distribution(self, rng):
        topo = CompleteTopology(5000)
        selector = GetPairPMRand(topo)
        phi = selector.phi_counts(selector.cycle_pairs(rng))
        assert phi.mean() == pytest.approx(2.0, abs=0.05)
        assert phi.var() == pytest.approx(1.0, rel=0.15)

    def test_odd_n_rejected(self):
        with pytest.raises(PairSelectionError):
            GetPairPMRand(CompleteTopology(7))

    def test_sparse_topology_rejected(self):
        with pytest.raises(PairSelectionError):
            GetPairPMRand(RingTopology(10, 2))

    def test_no_self_pairs(self, complete_20, rng):
        pairs = GetPairPMRand(complete_20).cycle_pairs(rng)
        assert np.all(pairs[:, 0] != pairs[:, 1])
