"""Tests for avg.vector — ValueVector and eq. (2)-(3) statistics."""

import numpy as np
import pytest

from repro.avg import ValueVector, empirical_mean, empirical_variance
from repro.errors import ConfigurationError


class TestStatistics:
    def test_empirical_mean(self):
        assert empirical_mean(np.array([1.0, 2.0, 3.0])) == 2.0

    def test_empirical_mean_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_mean(np.array([]))

    def test_empirical_variance_unbiased(self):
        # eq. (3) uses the 1/(N-1) normalization
        values = np.array([0.0, 2.0])
        assert empirical_variance(values) == pytest.approx(2.0)

    def test_empirical_variance_needs_two(self):
        with pytest.raises(ConfigurationError):
            empirical_variance(np.array([1.0]))


class TestConstruction:
    def test_from_list(self):
        vec = ValueVector([1, 2, 3])
        assert vec.n == 3
        assert vec.mean == 2.0

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            ValueVector(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ValueVector([])

    def test_uniform_bounds(self):
        vec = ValueVector.uniform(500, low=2.0, high=3.0, seed=1)
        assert vec.values.min() >= 2.0
        assert vec.values.max() <= 3.0

    def test_uniform_deterministic(self):
        a = ValueVector.uniform(10, seed=4)
        b = ValueVector.uniform(10, seed=4)
        assert np.array_equal(a.values, b.values)

    def test_gaussian_moments(self):
        vec = ValueVector.gaussian(5000, mean=10.0, std=2.0, seed=2)
        assert vec.mean == pytest.approx(10.0, abs=0.2)
        assert np.sqrt(vec.variance) == pytest.approx(2.0, abs=0.2)

    def test_peak_distribution(self):
        vec = ValueVector.peak(100, peak_value=1.0, peak_index=7)
        assert vec.values[7] == 1.0
        assert vec.total == 1.0
        assert vec.mean == pytest.approx(0.01)

    def test_peak_index_validated(self):
        with pytest.raises(ConfigurationError):
            ValueVector.peak(10, peak_index=10)

    def test_constant_zero_variance(self):
        vec = ValueVector.constant(10, 3.5)
        assert vec.variance == 0.0
        assert vec.mean == 3.5


class TestMutation:
    def test_elementary_step_sets_midpoint(self):
        vec = ValueVector([0.0, 4.0, 1.0])
        vec.elementary_step(0, 1)
        assert vec.values[0] == 2.0
        assert vec.values[1] == 2.0
        assert vec.values[2] == 1.0

    def test_elementary_step_conserves_sum(self):
        vec = ValueVector.uniform(10, seed=3)
        total = vec.total
        vec.elementary_step(2, 7)
        assert vec.total == pytest.approx(total)

    def test_elementary_step_reduces_variance(self):
        vec = ValueVector([0.0, 10.0, 5.0, 5.0])
        before = vec.variance
        vec.elementary_step(0, 1)
        assert vec.variance < before

    def test_elementary_step_same_index_rejected(self):
        vec = ValueVector([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            vec.elementary_step(1, 1)

    def test_snapshot_is_independent(self):
        vec = ValueVector([1.0, 2.0])
        snap = vec.snapshot()
        vec.elementary_step(0, 1)
        assert snap.tolist() == [1.0, 2.0]

    def test_copy_is_deep(self):
        vec = ValueVector([1.0, 2.0])
        dup = vec.copy()
        vec.elementary_step(0, 1)
        assert dup.values.tolist() == [1.0, 2.0]

    def test_max_error(self):
        vec = ValueVector([0.0, 2.0])
        assert vec.max_error() == 1.0

    def test_len(self):
        assert len(ValueVector([1, 2, 3])) == 3
