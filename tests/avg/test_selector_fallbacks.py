"""Tests for pair-selector generic fallback paths (non-adjacency,
non-complete topologies such as the live membership adapter)."""

import numpy as np
import pytest

from repro.avg import GetPairRand, GetPairSeq, ValueVector, run_avg
from repro.membership import (
    MembershipTopologyAdapter,
    NewscastMembership,
    StaticMembership,
)
from repro.topology import RingTopology


@pytest.fixture
def adapter():
    return MembershipTopologyAdapter(StaticMembership(RingTopology(30, 4)))


class TestRandFallback:
    def test_pairs_respect_views(self, adapter, rng):
        pairs = GetPairRand(adapter).cycle_pairs(rng)
        assert pairs.shape == (30, 2)
        for i, j in pairs.tolist():
            assert j in adapter.neighbors(i).tolist()

    def test_no_self_pairs(self, adapter, rng):
        pairs = GetPairRand(adapter).cycle_pairs(rng)
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_avg_converges_via_fallback(self, adapter):
        # a ring mixes slowly (diffusive), so allow a generous horizon
        vector = ValueVector.gaussian(30, seed=1)
        result = run_avg(vector, GetPairRand(adapter), 60, seed=2)
        assert result.variances[-1] < result.variances[0] * 1e-3


class TestSeqOverLiveViews:
    def test_partners_from_current_views(self, rng):
        membership = NewscastMembership(40, view_size=6, seed=3)
        adapter = MembershipTopologyAdapter(membership)
        selector = GetPairSeq(adapter)
        for _ in range(3):
            pairs = selector.cycle_pairs(rng)
            for i, j in pairs.tolist():
                assert j in membership.view(i)
            adapter.advance_cycle(rng)  # views change between cycles
