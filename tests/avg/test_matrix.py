"""Tests for avg.matrix — the linear-algebra view of AVG."""

import numpy as np
import pytest

from repro.avg import GetPairSeq, ValueVector, run_avg
from repro.avg.matrix import (
    contraction_coefficient,
    cycle_matrix,
    elementary_matrix,
    is_doubly_stochastic,
    realized_reduction,
)
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.topology import CompleteTopology


class TestElementaryMatrix:
    def test_structure(self):
        matrix = elementary_matrix(3, 0, 2)
        expected = np.array([
            [0.5, 0.0, 0.5],
            [0.0, 1.0, 0.0],
            [0.5, 0.0, 0.5],
        ])
        assert np.allclose(matrix, expected)

    def test_matches_elementary_step(self):
        vector = np.array([1.0, 5.0, 9.0])
        result = elementary_matrix(3, 0, 1) @ vector
        assert np.allclose(result, [3.0, 3.0, 9.0])

    def test_idempotent(self):
        matrix = elementary_matrix(4, 1, 2)
        assert np.allclose(matrix @ matrix, matrix)

    def test_doubly_stochastic(self):
        assert is_doubly_stochastic(elementary_matrix(5, 0, 4))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            elementary_matrix(3, 0, 0)
        with pytest.raises(ConfigurationError):
            elementary_matrix(3, 0, 3)


class TestCycleMatrix:
    def test_order_of_application(self):
        """Later pairs act on the output of earlier pairs."""
        pairs = [(0, 1), (1, 2)]
        matrix = cycle_matrix(3, pairs)
        vector = np.array([0.0, 4.0, 8.0])
        # manual: step (0,1) -> [2,2,8]; step (1,2) -> [2,5,5]
        assert np.allclose(matrix @ vector, [2.0, 5.0, 5.0])

    def test_every_cycle_matrix_doubly_stochastic(self, rng):
        topo = CompleteTopology(12)
        selector = GetPairSeq(topo)
        for _ in range(5):
            pairs = [tuple(p) for p in selector.cycle_pairs(rng).tolist()]
            assert is_doubly_stochastic(cycle_matrix(12, pairs))

    def test_matrix_agrees_with_algorithm(self):
        """The matrix product reproduces run_avg exactly for the same
        pair sequence."""
        n = 10
        topo = CompleteTopology(n)
        selector = GetPairSeq(topo)
        pair_rng = make_rng(77)
        pairs = [tuple(p) for p in selector.cycle_pairs(pair_rng).tolist()]
        vector = ValueVector.gaussian(n, seed=5)
        initial = vector.snapshot()
        # apply via the algorithm path
        for i, j in pairs:
            vector.elementary_step(i, j)
        # apply via the matrix path
        matrix_result = cycle_matrix(n, pairs) @ initial
        assert np.allclose(vector.values, matrix_result)


class TestContraction:
    def test_identity_no_contraction(self):
        assert contraction_coefficient(np.eye(5)) == pytest.approx(1.0)

    def test_full_averaging_total_contraction(self):
        n = 6
        matrix = np.ones((n, n)) / n
        assert contraction_coefficient(matrix) == pytest.approx(0.0, abs=1e-12)

    def test_bounds_realized_reduction(self, rng):
        """λ² upper-bounds the realized per-cycle reduction for every
        input vector."""
        n = 14
        selector = GetPairSeq(CompleteTopology(n))
        pairs = [tuple(p) for p in selector.cycle_pairs(rng).tolist()]
        matrix = cycle_matrix(n, pairs)
        bound = contraction_coefficient(matrix)
        for seed in range(5):
            vector = ValueVector.gaussian(n, seed=seed).values
            assert realized_reduction(matrix, vector) <= bound + 1e-9

    def test_realized_reduction_validation(self):
        with pytest.raises(ConfigurationError):
            realized_reduction(np.eye(3), np.ones(3))  # zero variance
        with pytest.raises(ConfigurationError):
            realized_reduction(np.eye(3), np.ones(4))

    def test_average_contraction_tracks_theory(self, rng):
        """Averaged over many cycles, the realized reduction on random
        vectors sits near E(2^{-φ}) = 1/(2√e) (Theorem 1) — the spectral
        view and the probabilistic view agree."""
        n = 60
        selector = GetPairSeq(CompleteTopology(n))
        reductions = []
        for seed in range(30):
            pairs = [tuple(p) for p in selector.cycle_pairs(rng).tolist()]
            matrix = cycle_matrix(n, pairs)
            vector = ValueVector.gaussian(n, seed=seed).values
            reductions.append(realized_reduction(matrix, vector))
        assert np.mean(reductions) == pytest.approx(0.3033, rel=0.15)


class TestDoublyStochasticCheck:
    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            is_doubly_stochastic(np.ones((2, 3)))

    def test_rejects_negative_entries(self):
        matrix = np.array([[1.5, -0.5], [-0.5, 1.5]])
        assert not is_doubly_stochastic(matrix)

    def test_rejects_bad_row_sums(self):
        assert not is_doubly_stochastic(np.full((2, 2), 0.4))
