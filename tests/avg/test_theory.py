"""Tests for avg.theory — the closed-form results of §3."""

import math

import numpy as np
import pytest

from repro.avg import (
    RATE_PM,
    RATE_RAND,
    RATE_SEQ,
    convergence_rate,
    cycles_to_reduce,
    expected_reduction_lemma1,
    expected_two_pow_minus_phi,
    phi_distribution,
    poisson_pmf,
    verify_lemma2_optimality,
)
from repro.errors import ConfigurationError


class TestRateConstants:
    def test_pm_rate_eq8(self):
        assert RATE_PM == 0.25

    def test_rand_rate_eq10(self):
        assert RATE_RAND == pytest.approx(1 / math.e)
        assert RATE_RAND == pytest.approx(0.368, abs=5e-4)

    def test_seq_rate_eq12(self):
        assert RATE_SEQ == pytest.approx(1 / (2 * math.sqrt(math.e)))
        assert RATE_SEQ == pytest.approx(0.303, abs=5e-4)

    def test_ordering_pm_best(self):
        """§3.3.3: 1/4 < 1/(2√e) < 1/e."""
        assert RATE_PM < RATE_SEQ < RATE_RAND

    def test_lookup(self):
        assert convergence_rate("pm") == RATE_PM
        assert convergence_rate("RAND") == RATE_RAND
        assert convergence_rate("seq") == RATE_SEQ
        assert convergence_rate("pmrand") == RATE_SEQ

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            convergence_rate("nope")


class TestPoisson:
    def test_pmf_sums_to_one(self):
        total = sum(poisson_pmf(k, 2.0) for k in range(80))
        assert total == pytest.approx(1.0)

    def test_pmf_values(self):
        assert poisson_pmf(0, 2.0) == pytest.approx(math.exp(-2))
        assert poisson_pmf(1, 2.0) == pytest.approx(2 * math.exp(-2))

    def test_negative_k_zero(self):
        assert poisson_pmf(-1, 2.0) == 0.0

    def test_zero_rate(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(1, 0.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_pmf(1, -1.0)


class TestPhiDistribution:
    def test_pm_point_mass(self):
        pmf = phi_distribution("pm")
        assert pmf[2] == 1.0
        assert pmf.sum() == pytest.approx(1.0)

    def test_rand_is_poisson2(self):
        """Eq. (9): P(φ = j) = 2^j e^{-2} / j!"""
        pmf = phi_distribution("rand")
        assert pmf[0] == pytest.approx(math.exp(-2))
        assert pmf[2] == pytest.approx(2 * math.exp(-2))
        mean = sum(k * p for k, p in enumerate(pmf))
        assert mean == pytest.approx(2.0)

    def test_seq_is_shifted_poisson(self):
        """Eq. (11): P(φ = j) = e^{-1} / (j-1)! for j >= 1."""
        pmf = phi_distribution("seq")
        assert pmf[0] == 0.0
        assert pmf[1] == pytest.approx(math.exp(-1))
        mean = sum(k * p for k, p in enumerate(pmf))
        assert mean == pytest.approx(2.0)

    def test_pmrand_equals_seq(self):
        assert np.allclose(phi_distribution("pmrand"), phi_distribution("seq"))

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            phi_distribution("bogus")


class TestExpectedTwoPowMinusPhi:
    """Theorem 1's rate functional reproduces eqs. (8), (10), (12)."""

    def test_pm(self):
        assert expected_two_pow_minus_phi(phi_distribution("pm")) == RATE_PM

    def test_rand_derivation_eq10(self):
        rate = expected_two_pow_minus_phi(phi_distribution("rand"))
        assert rate == pytest.approx(RATE_RAND)

    def test_seq_derivation_eq12(self):
        rate = expected_two_pow_minus_phi(phi_distribution("seq"))
        assert rate == pytest.approx(RATE_SEQ)

    def test_mapping_input(self):
        assert expected_two_pow_minus_phi({2: 1.0}) == 0.25

    def test_unnormalized_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_two_pow_minus_phi({1: 0.4})


class TestLemma1:
    def test_formula(self):
        # E(σ²_a − σ²_a') = (E(a_i²) + E(a_j²)) / (2(N−1))
        assert expected_reduction_lemma1(4.0, 2.0, 11) == pytest.approx(0.3)

    def test_needs_two_elements(self):
        with pytest.raises(ConfigurationError):
            expected_reduction_lemma1(1.0, 1.0, 1)

    def test_monte_carlo_agreement(self):
        """Empirically verify Lemma 1 on independent zero-mean values."""
        rng = np.random.default_rng(0)
        n = 50
        reductions = []
        for _ in range(4000):
            a = rng.normal(0, 1, size=n)
            before = a.var(ddof=1)
            a2 = a.copy()
            a2[0] = a2[1] = (a[0] + a[1]) / 2
            reductions.append(before - a2.var(ddof=1))
        predicted = expected_reduction_lemma1(1.0, 1.0, n)
        assert np.mean(reductions) == pytest.approx(predicted, rel=0.1)


class TestLemma2:
    def test_point_mass_is_optimal_boundary(self):
        assert verify_lemma2_optimality({2: 1.0})

    def test_poisson2_not_better(self):
        assert verify_lemma2_optimality(phi_distribution("rand"))

    def test_shifted_poisson_not_better(self):
        assert verify_lemma2_optimality(phi_distribution("seq"))

    def test_two_point_mixtures_not_better(self):
        """Sweep mixtures P(X=1)=p, P(X=3)=p, P(X=2)=1-2p."""
        for p in np.linspace(0.01, 0.5, 20):
            pmf = {1: p, 2: 1 - 2 * p, 3: p}
            assert verify_lemma2_optimality(pmf)

    def test_wrong_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            verify_lemma2_optimality({1: 1.0})


class TestCyclesToReduce:
    def test_paper_claim_section5(self):
        """§5: 99.9 % reduction needs ln 1000 ≈ 7 cycles with RAND."""
        assert cycles_to_reduce(1e-3, RATE_RAND) == 7

    def test_pm_needs_five(self):
        assert cycles_to_reduce(1e-3, RATE_PM) == 5

    def test_seq_needs_six(self):
        assert cycles_to_reduce(1e-3, RATE_SEQ) == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cycles_to_reduce(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            cycles_to_reduce(0.5, 1.5)
