"""Tests for analysis.validation — χ² machinery and the paper's
distributional claims about φ."""

import numpy as np
import pytest

from repro.analysis import (
    chi_square_critical,
    chi_square_statistic,
    poisson_fit_ok,
)
from repro.avg import GetPairRand, GetPairSeq
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.topology import CompleteTopology


class TestChiSquare:
    def test_perfect_fit_statistic_zero(self):
        observed = np.array([50, 30, 20])
        probabilities = np.array([0.5, 0.3, 0.2])
        assert chi_square_statistic(observed, probabilities) == pytest.approx(0.0)

    def test_bad_fit_large_statistic(self):
        observed = np.array([90, 5, 5])
        probabilities = np.array([1 / 3, 1 / 3, 1 / 3])
        assert chi_square_statistic(observed, probabilities) > 50

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            chi_square_statistic([0, 0], [0.5, 0.5])

    def test_critical_values_reasonable(self):
        # df=10, alpha=0.01: true value 23.21
        assert chi_square_critical(10, alpha=0.01) == pytest.approx(23.2, rel=0.05)
        # df=5, alpha=0.05: true value 11.07
        assert chi_square_critical(5, alpha=0.05) == pytest.approx(11.07, rel=0.05)

    def test_critical_validation(self):
        with pytest.raises(ConfigurationError):
            chi_square_critical(0)


class TestPoissonFit:
    def test_true_poisson_accepted(self):
        rng = np.random.default_rng(1)
        samples = rng.poisson(2.0, size=20000)
        assert poisson_fit_ok(samples, 2.0)

    def test_wrong_rate_rejected(self):
        rng = np.random.default_rng(2)
        samples = rng.poisson(4.0, size=20000)
        assert not poisson_fit_ok(samples, 2.0)

    def test_shifted_distribution(self):
        rng = np.random.default_rng(3)
        samples = 1 + rng.poisson(1.0, size=20000)
        assert poisson_fit_ok(samples, 1.0, shift=1)
        assert not poisson_fit_ok(samples, 1.0)  # unshifted fit fails

    def test_negative_after_shift_rejected(self):
        assert not poisson_fit_ok([0, 1, 2], 1.0, shift=1)


class TestPaperDistributionClaims:
    """Eq. (9) and eq. (11) tested as distributions, not just moments."""

    def test_rand_phi_is_poisson2(self):
        topo = CompleteTopology(20000)
        selector = GetPairRand(topo)
        phi = selector.phi_counts(selector.cycle_pairs(make_rng(4)))
        assert poisson_fit_ok(phi, 2.0)

    def test_seq_phi_is_one_plus_poisson1(self):
        topo = CompleteTopology(20000)
        selector = GetPairSeq(topo)
        phi = selector.phi_counts(selector.cycle_pairs(make_rng(5)))
        assert poisson_fit_ok(phi, 1.0, shift=1)

    def test_seq_phi_is_not_poisson2(self):
        """SEQ and RAND have the same mean φ = 2 but different
        distributions — the whole point of §3.3.3."""
        topo = CompleteTopology(20000)
        selector = GetPairSeq(topo)
        phi = selector.phi_counts(selector.cycle_pairs(make_rng(6)))
        assert not poisson_fit_ok(phi, 2.0)
