"""Tests for the analysis package: stats, runner, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    Table,
    confidence_interval,
    format_series,
    format_table,
    geometric_mean,
    replicate,
    summarize,
    sweep,
)
from repro.errors import ConfigurationError


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3
        assert summary.std == pytest.approx(1.0)

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_standard_error(self):
        summary = summarize([0.0, 2.0, 4.0, 6.0])
        assert summary.standard_error == pytest.approx(
            summary.std / 2.0
        )

    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert low < 2.5 < high

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestReplicate:
    def test_collects_outputs(self):
        result = replicate(lambda rng: float(rng.random()), runs=5, seed=1)
        assert len(result.outputs) == 5

    def test_runs_are_independent(self):
        result = replicate(lambda rng: float(rng.random()), runs=5, seed=1)
        assert len(set(result.outputs)) == 5

    def test_deterministic(self):
        a = replicate(lambda rng: float(rng.random()), runs=3, seed=2)
        b = replicate(lambda rng: float(rng.random()), runs=3, seed=2)
        assert a.outputs == b.outputs

    def test_as_array(self):
        result = replicate(lambda rng: 1.0, runs=4, seed=3)
        assert result.as_array().shape == (4,)

    def test_zero_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(lambda rng: 1.0, runs=0)


class TestSweep:
    def test_covers_all_parameters(self):
        outcomes = sweep(
            lambda p, rng: p * 10, [1, 2, 3], runs=2, seed=4
        )
        assert set(outcomes) == {1, 2, 3}
        assert outcomes[2].outputs == [20, 20]

    def test_adding_points_is_stable(self):
        """Seeds are per-point, so results for shared points agree."""
        short = sweep(lambda p, rng: float(rng.random()), [1, 2], runs=2, seed=5)
        # the same points in a different sweep order with the same seed
        again = sweep(lambda p, rng: float(rng.random()), [1, 2], runs=2, seed=5)
        assert short[1].outputs == again[1].outputs

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(lambda p, rng: p, [], runs=1)


class TestReporting:
    def test_table_rendering(self):
        table = Table(headers=["name", "rate"], title="Rates")
        table.add_row("pm", 0.25)
        table.add_row("rand", 0.368)
        text = table.render()
        assert "Rates" in text
        assert "pm" in text
        assert "0.368" in text

    def test_row_width_checked(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_format_table(self):
        text = format_table("T", ["x"], [[1], [2]])
        assert text.splitlines()[0] == "T"

    def test_format_series(self):
        text = format_series("S", [1, 2], [0.5, 0.25], x_name="cycle",
                             y_name="variance")
        assert "cycle" in text
        assert "variance" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_series("S", [1], [1, 2])

    def test_alignment(self):
        table = Table(headers=["long_header", "x"])
        table.add_row("a", "very_long_cell")
        lines = table.render().splitlines()
        assert len(lines[0]) == len(lines[2]) or len(lines[1]) >= len(lines[2])
