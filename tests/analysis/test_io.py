"""Tests for analysis.io — JSON/CSV result serialization."""

import pytest

from repro.analysis.io import read_csv, read_json, write_csv, write_json
from repro.errors import ConfigurationError

ROWS = [
    {"selector": "pm", "rate": 0.25, "runs": 5},
    {"selector": "rand", "rate": 0.368, "runs": 5},
]


class TestJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "rates.json"
        write_json(path, ROWS, metadata={"n": 1000})
        document = read_json(path)
        assert document["rows"] == ROWS
        assert document["metadata"]["n"] == 1000

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_json(tmp_path / "x.json", [])

    def test_inconsistent_fields_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_json(tmp_path / "x.json", [{"a": 1}, {"b": 2}])

    def test_non_result_document_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError):
            read_json(path)


class TestCsv:
    def test_roundtrip_with_types(self, tmp_path):
        path = tmp_path / "rates.csv"
        write_csv(path, ROWS)
        rows = read_csv(path)
        assert rows == ROWS  # ints and floats restored

    def test_strings_preserved(self, tmp_path):
        path = tmp_path / "s.csv"
        write_csv(path, [{"name": "seq", "note": "fast"}])
        assert read_csv(path) == [{"name": "seq", "note": "fast"}]

    def test_header_written(self, tmp_path):
        path = tmp_path / "h.csv"
        write_csv(path, ROWS)
        assert path.read_text().splitlines()[0] == "selector,rate,runs"
