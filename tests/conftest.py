"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CompleteTopology, RandomRegularTopology


@pytest.fixture
def rng():
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def complete_100():
    """A small complete topology shared across tests."""
    return CompleteTopology(100)


@pytest.fixture(scope="session")
def regular_200_6():
    """A 6-regular random graph on 200 nodes (session-cached: generation
    is the expensive part)."""
    return RandomRegularTopology(200, 6, seed=777)
