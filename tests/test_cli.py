"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    @pytest.mark.parametrize(
        "argv",
        [["rates"], ["figure3a"], ["figure4"], ["monitor"]],
    )
    def test_known_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestExecution:
    def test_rates_output(self, capsys):
        code = main(["rates", "--n", "200", "--runs", "2", "--cycles", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pm" in out
        assert "seq" in out
        assert "0.25" in out  # the theory column

    def test_figure3a_output(self, capsys):
        code = main(["figure3a", "--runs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out
        assert "316" in out

    def test_figure3a_sparse_overlay(self, capsys):
        code = main([
            "figure3a", "--runs", "2", "--n", "500",
            "--topology", "regular20", "--backend", "vectorized",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rand/regular20" in out
        assert "seq/regular20" in out

    def test_figure3a_regular20_needs_enough_nodes(self):
        with pytest.raises(SystemExit):
            main(["figure3a", "--n", "10", "--topology", "regular20"])

    def test_figure4_output(self, capsys):
        code = main(["figure4", "--n", "300", "--cycles", "60", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "estimate" in out

    def test_monitor_output(self, capsys):
        code = main(["monitor", "--n", "300", "--cycles", "20", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "network size" in out
        assert "total" in out
