"""Sharded-backend determinism and lifecycle suite.

The sharded backend replays the engine's exact exchange/pair sequences
through a worker pool over a shared-memory value matrix, so — like the
vectorized backend — it must reproduce the reference trajectories
**bitwise**, for any worker count, under every scenario family the
kernel supports: plain cycles, pair mode (all four GETPAIR selectors),
failure filters, churn + epoch restarts (including capacity growth,
which remaps the shared segment), and sparse CSR overlays.

Backend specs (``"sharded:<workers>"``) and their typed
:class:`~repro.errors.BackendSpecError` failures are covered here too,
including at the CLI boundary.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import (
    MaxAggregate,
    MeanAggregate,
    moment_values,
)
from repro.errors import BackendSpecError, ConfigurationError
from repro.failures import ConstantRateChurn, CrashPlan
from repro.kernel import (
    ChurnSpec,
    EpochSpec,
    GossipEngine,
    PairProtocolSpec,
    ReferenceBackend,
    Scenario,
    ShardedBackend,
    make_backend,
    parse_backend_spec,
)
from repro.topology import (
    CompleteTopology,
    ErdosRenyiTopology,
    RandomRegularTopology,
)

WORKER_COUNTS = (1, 2, 4)


def run_engine(backend, scenario_kwargs, cycles=10):
    """One full engine run; returns (final matrix, result)."""
    with GossipEngine(Scenario(backend=backend, **scenario_kwargs)) as engine:
        result = engine.run(cycles)
        return engine.matrix, engine.alive_mask, result


def assert_sharded_matches_reference(scenario_kwargs, workers, cycles=10):
    ref_matrix, ref_alive, ref_result = run_engine(
        "reference", scenario_kwargs, cycles
    )
    sh_matrix, sh_alive, sh_result = run_engine(
        f"sharded:{workers}", scenario_kwargs, cycles
    )
    assert np.array_equal(ref_matrix, sh_matrix)
    assert np.array_equal(ref_alive, sh_alive)
    assert ref_result.exchange_counts == sh_result.exchange_counts
    assert ref_result.alive_counts == sh_result.alive_counts


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestShardedBitwiseEquivalence:
    def test_plain_cycles(self, workers):
        topology = CompleteTopology(257)
        values = np.random.default_rng(1).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, seed=51), workers
        )

    def test_multi_aggregate(self, workers):
        topology = CompleteTopology(200)
        values = np.random.default_rng(2).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                aggregates={
                    "mean": MeanAggregate(),
                    "m2": MeanAggregate(),
                    "max": MaxAggregate(),
                },
                initial={"m2": moment_values(values, 2)},
                seed=52,
            ),
            workers,
        )

    def test_loss_and_crashes(self, workers):
        """Failure filters drive the engine's masked (slow) path; the
        surviving exchange stream must still replay identically."""
        topology = CompleteTopology(240)
        values = np.random.default_rng(3).normal(5.0, 2.0, topology.n)
        plan = CrashPlan()
        plan.add(3, list(range(40)))
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, loss_probability=0.25,
                 crash_plan=plan, seed=53),
            workers,
        )

    @pytest.mark.parametrize("selector", ["pm", "rand", "seq", "pmrand"])
    def test_pair_mode_selectors(self, workers, selector):
        topology = CompleteTopology(200)
        values = np.random.default_rng(4).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                pair_protocol=PairProtocolSpec(selector, track_s=True),
                seed=54,
            ),
            workers,
            cycles=6,
        )

    def test_churn_with_epoch_restarts(self, workers):
        topology = CompleteTopology(220)
        values = np.random.default_rng(5).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                churn=ChurnSpec(
                    model=ConstantRateChurn(
                        joins_per_cycle=6, leaves_per_cycle=4
                    ),
                    join_values=lambda m, rng: rng.normal(5.0, 2.0, m),
                ),
                epochs=EpochSpec(cycles_per_epoch=5),
                seed=55,
            ),
            workers,
            cycles=15,
        )

    def test_capacity_growth_remaps_shared_segment(self, workers):
        """Heavy joins force geometric matrix growth, so the backend
        must remap its shared segment mid-run — repeatedly."""
        topology = CompleteTopology(64)
        values = np.random.default_rng(6).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                churn=ConstantRateChurn(joins_per_cycle=40,
                                        leaves_per_cycle=2),
                seed=56,
            ),
            workers,
            cycles=12,
        )

    def test_sparse_csr_overlay(self, workers):
        """The paper's 20-regular overlay: CSR partner draws stay
        engine-side; the sharded execution must match bit for bit."""
        topology = RandomRegularTopology(120, 20, seed=7)
        values = np.random.default_rng(7).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, seed=57), workers
        )

    def test_irregular_sparse_overlay(self, workers):
        topology = ErdosRenyiTopology(150, 0.08, seed=8)
        values = np.random.default_rng(8).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, seed=58), workers
        )


class TestShardedBackendDirect:
    """Direct (engine-less) use: the backend stages a borrowed matrix
    through shared memory for the call and copies the result back."""

    def test_apply_exchanges_on_borrowed_matrix(self):
        rng = np.random.default_rng(9)
        n, m = 90, 300
        matrix_ref = rng.normal(0.0, 1.0, (n, 2))
        matrix_sh = matrix_ref.copy()
        exch_i = rng.integers(0, n, m)
        exch_j = (exch_i + 1 + rng.integers(0, n - 1, m)) % n
        functions = (MeanAggregate(), MaxAggregate())
        ReferenceBackend().apply_exchanges(
            matrix_ref, functions, exch_i, exch_j
        )
        backend = ShardedBackend(workers=2)
        try:
            backend.apply_exchanges(matrix_sh, functions, exch_i, exch_j)
        finally:
            backend.close()
        assert np.array_equal(matrix_ref, matrix_sh)

    def test_tiny_chunk_stresses_segment_boundaries(self):
        """A pathological 7-step window exercises many batch/tail
        segments per call; results must not change."""
        rng = np.random.default_rng(10)
        n, m = 40, 200
        matrix_ref = rng.normal(0.0, 1.0, (n, 1))
        matrix_sh = matrix_ref.copy()
        exch_i = rng.integers(0, n, m)
        exch_j = (exch_i + 1 + rng.integers(0, n - 1, m)) % n
        functions = (MeanAggregate(),)
        ReferenceBackend().apply_exchanges(
            matrix_ref, functions, exch_i, exch_j
        )
        backend = ShardedBackend(workers=3, chunk=7)
        try:
            backend.apply_exchanges(matrix_sh, functions, exch_i, exch_j)
        finally:
            backend.close()
        assert np.array_equal(matrix_ref, matrix_sh)

    def test_empty_call_is_a_noop(self):
        backend = ShardedBackend(workers=1)
        matrix = np.ones((4, 1))
        backend.apply_exchanges(
            matrix, (MeanAggregate(),),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        )
        # no pool should have spawned for an empty exchange list
        assert backend.active_workers == 0
        backend.close()
        assert np.array_equal(matrix, np.ones((4, 1)))


class TestShardedLifecycle:
    def test_close_terminates_workers(self):
        topology = CompleteTopology(128)
        values = np.random.default_rng(11).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(topology, values, seed=59, backend="sharded:2")
        )
        backend = engine._backend
        assert backend.active_workers == 2
        engine.run(2)
        engine.close()
        assert backend.active_workers == 0
        # idempotent
        engine.close()
        assert backend.active_workers == 0

    def test_engine_observers_valid_after_close(self):
        """Closing unmaps the shared segment, so the engine must detach
        its matrix first (release_matrix) — post-close reads used to
        hit unmapped memory (hard crash, not an exception)."""
        topology = CompleteTopology(128)
        values = np.random.default_rng(12).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(topology, values, seed=60, backend="sharded:2")
        )
        engine.run(3)
        live_matrix = engine.matrix
        engine.close()
        assert np.array_equal(engine.matrix, live_matrix)
        assert engine.variance() >= 0.0
        assert len(engine.alive_column()) == topology.n
        assert float(np.mean(values)) == pytest.approx(engine.mean())
        # running again would silently respawn a pool on a stale copy
        with pytest.raises(Exception, match="closed"):
            engine.run(1)

    def test_shard_chunk_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_CHUNK", "123")
        backend = ShardedBackend(workers=1)
        assert backend._chunk == 123
        backend.close()
        monkeypatch.setenv("REPRO_SHARD_CHUNK", "nope")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=1)

    def test_parked_segments_stay_bounded_across_epoch_rebuilds(self):
        """Epoch restarts that change the instance count re-adopt the
        matrix every epoch; only the last superseded segment may stay
        mapped (older generations have no live views) or long Figure 4
        runs would retain one dead segment per epoch."""
        n = 64
        values = np.random.default_rng(14).normal(5.0, 2.0, n)

        def reseed(context):
            # alternate the instance count so every epoch rebuilds
            k = 1 + (context.epoch % 2)
            return np.ones((len(context.participants), k))

        engine = GossipEngine(
            Scenario(
                CompleteTopology(n), values,
                epochs=EpochSpec(cycles_per_epoch=2, reseed=reseed),
                seed=62, backend="sharded:1",
            )
        )
        try:
            engine.run(20)  # 10 epochs, ~10 remaps
            assert len(engine._backend._parked) <= 1
        finally:
            engine.close()
        assert engine._backend._parked == []

    def test_timeout_env_validated_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "not-seconds")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=1)
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "-1")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=1)

    def test_spawn_start_method_works(self, monkeypatch):
        """Off Linux the pool uses spawn (fork is unsafe under macOS
        frameworks); the worker protocol must be spawn-clean — entry
        point importable, all state over pipes."""
        import repro.kernel.backends.sharded as sharded_module

        monkeypatch.setattr(sharded_module.sys, "platform", "darwin")
        topology = CompleteTopology(96)
        values = np.random.default_rng(13).normal(5.0, 2.0, topology.n)
        ref_matrix, _, _ = run_engine(
            "reference", dict(topology=topology, values=values, seed=61),
            cycles=4,
        )
        engine = GossipEngine(
            Scenario(topology, values, seed=61, backend="sharded:1")
        )
        try:
            assert engine._backend._ctx.get_start_method() == "spawn"
            engine.run(4)
            assert np.array_equal(engine.matrix, ref_matrix)
        finally:
            engine.close()

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=0)
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=True)
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=2.5)

    def test_trace_rejected(self):
        backend = ShardedBackend(workers=1)
        with pytest.raises(Exception):
            backend.apply_exchanges(
                np.ones((4, 1)), (MeanAggregate(),),
                np.array([0]), np.array([1]), trace=object(),
            )
        backend.close()


class TestBackendSpecs:
    def test_make_backend_sharded_default_workers(self):
        backend = make_backend("sharded")
        assert isinstance(backend, ShardedBackend)
        assert backend.workers >= 1
        backend.close()

    def test_make_backend_sharded_explicit_workers(self):
        backend = make_backend("sharded:3")
        assert backend.workers == 3
        backend.close()

    @pytest.mark.parametrize("spec", [
        "gpu", "sharded:two", "sharded:0", "sharded:-1", "sharded:",
        "vectorized:4", "auto",
    ])
    def test_bad_specs_raise_typed_error(self, spec):
        with pytest.raises(BackendSpecError) as excinfo:
            make_backend(spec)
        error = excinfo.value
        assert error.spec == spec
        assert "sharded" in str(error)
        assert error.valid_backends  # the full list rides on the error

    def test_parse_accepts_auto_when_allowed(self):
        assert parse_backend_spec("auto", allow_auto=True) == ("auto", None)
        assert parse_backend_spec("sharded:8") == ("sharded", 8)

    def test_scenario_validates_spec(self):
        topology = CompleteTopology(16)
        values = np.zeros(16)
        with pytest.raises(BackendSpecError):
            Scenario(topology, values, backend="sharded:nope")
        # well-formed parameterized specs are accepted and preserved
        scenario = Scenario(topology, values, backend="sharded:2")
        assert scenario.resolve_backend() == "sharded:2"

    def test_auto_never_resolves_to_sharded(self):
        topology = CompleteTopology(16)
        scenario = Scenario(topology, np.zeros(16), backend="auto")
        assert scenario.resolve_backend() in ("reference", "vectorized")


class TestCliBackendSpecs:
    def test_unknown_backend_lists_valid_forms(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["scale", "--n", "64", "--backend", "bogus"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "valid backends" in stderr
        assert "'sharded:<workers>'" in stderr

    def test_malformed_sharded_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["figure3a", "--backend", "sharded:zero"])
        assert excinfo.value.code == 2
        assert "not an integer" in capsys.readouterr().err

    def test_workers_requires_sharded(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["scale", "--n", "64", "--backend", "vectorized",
                      "--workers", "2"])
        assert excinfo.value.code == 2
        assert "--workers requires --backend sharded" in (
            capsys.readouterr().err
        )

    def test_workers_conflicts_with_parameterized_spec(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["scale", "--n", "64", "--backend", "sharded:2",
                      "--workers", "2"])
        assert excinfo.value.code == 2

    def test_scale_runs_sharded_via_workers_flag(self, capsys):
        assert cli_main(["scale", "--n", "300", "--cycles", "2",
                         "--backend", "sharded", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded:2" in out

    def test_scale_comparison_list(self, capsys):
        assert cli_main(["scale", "--n", "300", "--cycles", "2",
                         "--backend", "reference,sharded:1"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out and "sharded:1" in out
