"""Sharded-backend determinism and lifecycle suite.

The sharded backend replays the engine's exact exchange/pair sequences
through a worker pool over a shared-memory value matrix, so — like the
vectorized backend — it must reproduce the reference trajectories
**bitwise**, for any worker count, under every scenario family the
kernel supports: plain cycles, pair mode (all four GETPAIR selectors),
failure filters, churn + epoch restarts (including capacity growth,
which remaps the shared segment), and sparse CSR overlays.

Backend specs (``"sharded:<workers>"``) and their typed
:class:`~repro.errors.BackendSpecError` failures are covered here too,
including at the CLI boundary.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import (
    MaxAggregate,
    MeanAggregate,
    moment_values,
)
from repro.errors import BackendSpecError, ConfigurationError
from repro.failures import ConstantRateChurn, CrashPlan
from repro.kernel import (
    ChurnSpec,
    EpochSpec,
    GossipEngine,
    PairProtocolSpec,
    ReferenceBackend,
    Scenario,
    ShardedBackend,
    make_backend,
    parse_backend_spec,
)
from repro.topology import (
    CompleteTopology,
    ErdosRenyiTopology,
    RandomRegularTopology,
)

WORKER_COUNTS = (1, 2, 4)


def run_engine(backend, scenario_kwargs, cycles=10):
    """One full engine run; returns (final matrix, result)."""
    with GossipEngine(Scenario(backend=backend, **scenario_kwargs)) as engine:
        result = engine.run(cycles)
        return engine.matrix, engine.alive_mask, result


def assert_sharded_matches_reference(scenario_kwargs, workers, cycles=10):
    ref_matrix, ref_alive, ref_result = run_engine(
        "reference", scenario_kwargs, cycles
    )
    sh_matrix, sh_alive, sh_result = run_engine(
        f"sharded:{workers}", scenario_kwargs, cycles
    )
    assert np.array_equal(ref_matrix, sh_matrix)
    assert np.array_equal(ref_alive, sh_alive)
    assert ref_result.exchange_counts == sh_result.exchange_counts
    assert ref_result.alive_counts == sh_result.alive_counts


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestShardedBitwiseEquivalence:
    def test_plain_cycles(self, workers):
        topology = CompleteTopology(257)
        values = np.random.default_rng(1).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, seed=51), workers
        )

    def test_multi_aggregate(self, workers):
        topology = CompleteTopology(200)
        values = np.random.default_rng(2).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                aggregates={
                    "mean": MeanAggregate(),
                    "m2": MeanAggregate(),
                    "max": MaxAggregate(),
                },
                initial={"m2": moment_values(values, 2)},
                seed=52,
            ),
            workers,
        )

    def test_loss_and_crashes(self, workers):
        """Failure filters drive the engine's masked (slow) path; the
        surviving exchange stream must still replay identically."""
        topology = CompleteTopology(240)
        values = np.random.default_rng(3).normal(5.0, 2.0, topology.n)
        plan = CrashPlan()
        plan.add(3, list(range(40)))
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, loss_probability=0.25,
                 crash_plan=plan, seed=53),
            workers,
        )

    @pytest.mark.parametrize("selector", ["pm", "rand", "seq", "pmrand"])
    def test_pair_mode_selectors(self, workers, selector):
        topology = CompleteTopology(200)
        values = np.random.default_rng(4).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                pair_protocol=PairProtocolSpec(selector, track_s=True),
                seed=54,
            ),
            workers,
            cycles=6,
        )

    def test_churn_with_epoch_restarts(self, workers):
        topology = CompleteTopology(220)
        values = np.random.default_rng(5).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                churn=ChurnSpec(
                    model=ConstantRateChurn(
                        joins_per_cycle=6, leaves_per_cycle=4
                    ),
                    join_values=lambda m, rng: rng.normal(5.0, 2.0, m),
                ),
                epochs=EpochSpec(cycles_per_epoch=5),
                seed=55,
            ),
            workers,
            cycles=15,
        )

    def test_capacity_growth_remaps_shared_segment(self, workers):
        """Heavy joins force geometric matrix growth, so the backend
        must remap its shared segment mid-run — repeatedly."""
        topology = CompleteTopology(64)
        values = np.random.default_rng(6).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(
                topology=topology,
                values=values,
                churn=ConstantRateChurn(joins_per_cycle=40,
                                        leaves_per_cycle=2),
                seed=56,
            ),
            workers,
            cycles=12,
        )

    def test_sparse_csr_overlay(self, workers):
        """The paper's 20-regular overlay: CSR partner draws stay
        engine-side; the sharded execution must match bit for bit."""
        topology = RandomRegularTopology(120, 20, seed=7)
        values = np.random.default_rng(7).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, seed=57), workers
        )

    def test_irregular_sparse_overlay(self, workers):
        topology = ErdosRenyiTopology(150, 0.08, seed=8)
        values = np.random.default_rng(8).normal(5.0, 2.0, topology.n)
        assert_sharded_matches_reference(
            dict(topology=topology, values=values, seed=58), workers
        )


class TestShardedBackendDirect:
    """Direct (engine-less) use: the backend stages a borrowed matrix
    through shared memory for the call and copies the result back."""

    def test_apply_exchanges_on_borrowed_matrix(self):
        rng = np.random.default_rng(9)
        n, m = 90, 300
        matrix_ref = rng.normal(0.0, 1.0, (n, 2))
        matrix_sh = matrix_ref.copy()
        exch_i = rng.integers(0, n, m)
        exch_j = (exch_i + 1 + rng.integers(0, n - 1, m)) % n
        functions = (MeanAggregate(), MaxAggregate())
        ReferenceBackend().apply_exchanges(
            matrix_ref, functions, exch_i, exch_j
        )
        backend = ShardedBackend(workers=2)
        try:
            backend.apply_exchanges(matrix_sh, functions, exch_i, exch_j)
        finally:
            backend.close()
        assert np.array_equal(matrix_ref, matrix_sh)

    def test_tiny_chunk_stresses_segment_boundaries(self):
        """A pathological 7-step window exercises many batch/tail
        segments per call; results must not change."""
        rng = np.random.default_rng(10)
        n, m = 40, 200
        matrix_ref = rng.normal(0.0, 1.0, (n, 1))
        matrix_sh = matrix_ref.copy()
        exch_i = rng.integers(0, n, m)
        exch_j = (exch_i + 1 + rng.integers(0, n - 1, m)) % n
        functions = (MeanAggregate(),)
        ReferenceBackend().apply_exchanges(
            matrix_ref, functions, exch_i, exch_j
        )
        backend = ShardedBackend(workers=3, chunk=7)
        try:
            backend.apply_exchanges(matrix_sh, functions, exch_i, exch_j)
        finally:
            backend.close()
        assert np.array_equal(matrix_ref, matrix_sh)

    def test_empty_call_is_a_noop(self):
        backend = ShardedBackend(workers=1)
        matrix = np.ones((4, 1))
        backend.apply_exchanges(
            matrix, (MeanAggregate(),),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        )
        # no pool should have spawned for an empty exchange list
        assert backend.active_workers == 0
        backend.close()
        assert np.array_equal(matrix, np.ones((4, 1)))


class TestShardedLifecycle:
    def test_close_terminates_workers(self):
        topology = CompleteTopology(128)
        values = np.random.default_rng(11).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(topology, values, seed=59, backend="sharded:2")
        )
        backend = engine._backend
        assert backend.active_workers == 2
        engine.run(2)
        engine.close()
        assert backend.active_workers == 0
        # idempotent
        engine.close()
        assert backend.active_workers == 0

    def test_engine_observers_valid_after_close(self):
        """Closing unmaps the shared segment, so the engine must detach
        its matrix first (release_matrix) — post-close reads used to
        hit unmapped memory (hard crash, not an exception)."""
        topology = CompleteTopology(128)
        values = np.random.default_rng(12).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(topology, values, seed=60, backend="sharded:2")
        )
        engine.run(3)
        live_matrix = engine.matrix
        engine.close()
        assert np.array_equal(engine.matrix, live_matrix)
        assert engine.variance() >= 0.0
        assert len(engine.alive_column()) == topology.n
        assert float(np.mean(values)) == pytest.approx(engine.mean())
        # running again would silently respawn a pool on a stale copy
        with pytest.raises(Exception, match="closed"):
            engine.run(1)

    def test_shard_chunk_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_CHUNK", "123")
        backend = ShardedBackend(workers=1)
        assert backend._chunk == 123
        backend.close()
        monkeypatch.setenv("REPRO_SHARD_CHUNK", "nope")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=1)

    def test_parked_segments_stay_bounded_across_epoch_rebuilds(self):
        """Epoch restarts that change the instance count re-adopt the
        matrix every epoch; only the last superseded segment may stay
        mapped (older generations have no live views) or long Figure 4
        runs would retain one dead segment per epoch."""
        n = 64
        values = np.random.default_rng(14).normal(5.0, 2.0, n)

        def reseed(context):
            # alternate the instance count so every epoch rebuilds
            k = 1 + (context.epoch % 2)
            return np.ones((len(context.participants), k))

        engine = GossipEngine(
            Scenario(
                CompleteTopology(n), values,
                epochs=EpochSpec(cycles_per_epoch=2, reseed=reseed),
                seed=62, backend="sharded:1",
            )
        )
        try:
            engine.run(20)  # 10 epochs, ~10 remaps
            assert len(engine._backend._parked) <= 1
        finally:
            engine.close()
        assert engine._backend._parked == []

    def test_timeout_env_validated_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "not-seconds")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=1)
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "-1")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=1)

    def test_spawn_start_method_works(self, monkeypatch):
        """Off Linux the pool uses spawn (fork is unsafe under macOS
        frameworks); the worker protocol must be spawn-clean — entry
        point importable, all state over pipes."""
        import repro.kernel.backends.sharded as sharded_module

        monkeypatch.setattr(sharded_module.sys, "platform", "darwin")
        topology = CompleteTopology(96)
        values = np.random.default_rng(13).normal(5.0, 2.0, topology.n)
        ref_matrix, _, _ = run_engine(
            "reference", dict(topology=topology, values=values, seed=61),
            cycles=4,
        )
        engine = GossipEngine(
            Scenario(topology, values, seed=61, backend="sharded:1")
        )
        try:
            assert engine._backend._ctx.get_start_method() == "spawn"
            engine.run(4)
            assert np.array_equal(engine.matrix, ref_matrix)
        finally:
            engine.close()

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=0)
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=True)
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=2.5)

    def test_trace_rejected(self):
        backend = ShardedBackend(workers=1)
        with pytest.raises(Exception):
            backend.apply_exchanges(
                np.ones((4, 1)), (MeanAggregate(),),
                np.array([0]), np.array([1]), trace=object(),
            )
        backend.close()


def _families():
    """The four scenario families of the pipelined sweep: plain
    cycles, pair-mode PM, churn + epoch restarts with capacity growth
    (shared-segment remaps mid-run), and a sparse CSR overlay."""
    rng = np.random.default_rng(21)
    plain = CompleteTopology(230)
    sparse = RandomRegularTopology(130, 20, seed=22)
    return {
        "plain": dict(
            topology=plain, values=rng.normal(5.0, 2.0, plain.n), seed=71
        ),
        "pair_pm": dict(
            topology=plain, values=rng.normal(5.0, 2.0, plain.n),
            pair_protocol=PairProtocolSpec("pm", track_s=True), seed=72,
        ),
        "churn_epoch": dict(
            topology=CompleteTopology(72),
            values=rng.normal(5.0, 2.0, 72),
            churn=ChurnSpec(
                model=ConstantRateChurn(joins_per_cycle=30,
                                        leaves_per_cycle=2),
            ),
            epochs=EpochSpec(cycles_per_epoch=4),
            seed=73,
        ),
        "sparse_csr": dict(
            topology=sparse, values=rng.normal(5.0, 2.0, sparse.n), seed=74
        ),
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("family", sorted(_families()))
class TestPipelineModes:
    """Pipelined vs barrier execution: both modes must be bitwise-equal
    to the reference oracle for every worker count and family — the
    pipeline changes *when* a planned segment is applied, never *what*
    is applied."""

    def test_pipelined_sweep(self, family, workers, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_PIPELINE", "1")
        assert_sharded_matches_reference(
            _families()[family], workers, cycles=12
        )

    def test_barrier_mode_sweep(self, family, workers, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_PIPELINE", "0")
        assert_sharded_matches_reference(
            _families()[family], workers, cycles=12
        )


class TestPipelineMechanics:
    def test_pipeline_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_PIPELINE", "0")
        barrier = ShardedBackend(workers=1)
        assert barrier.pipelined is False
        barrier.close()
        monkeypatch.setenv("REPRO_SHARD_PIPELINE", "1")
        piped = ShardedBackend(workers=1)
        assert piped.pipelined is True
        piped.close()
        monkeypatch.setenv("REPRO_SHARD_PIPELINE", "maybe")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers=1)

    def test_pipelined_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_PIPELINE", "0")
        backend = ShardedBackend(workers=1, pipelined=True)
        assert backend.pipelined is True
        backend.close()

    def test_tiny_chunk_forces_bank_wraparound(self, monkeypatch):
        """A pathological 7-step window makes every cycle publish many
        segments, and 16 cycles alternate the two step-buffer banks
        through many reuse generations; the handoff must never
        overwrite a bank that is still in flight."""
        monkeypatch.setenv("REPRO_SHARD_CHUNK", "7")
        monkeypatch.setenv("REPRO_SHARD_PIPELINE", "1")
        topology = CompleteTopology(96)
        values = np.random.default_rng(23).normal(5.0, 2.0, topology.n)
        kwargs = dict(topology=topology, values=values, seed=75)
        ref_matrix, _, ref_result = run_engine(
            "reference", kwargs, cycles=16
        )
        sh_matrix, _, sh_result = run_engine(
            "sharded:2", kwargs, cycles=16
        )
        assert np.array_equal(ref_matrix, sh_matrix)
        assert ref_result.exchange_counts == sh_result.exchange_counts

    def test_phase_seconds_accumulate(self):
        topology = CompleteTopology(200)
        values = np.random.default_rng(24).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(topology, values, seed=76, backend="sharded:2")
        )
        try:
            engine.run(4, record="end")
            phases = engine._backend.phase_seconds
            assert set(phases) == {"plan", "apply", "sync"}
            assert phases["plan"] > 0.0
            assert phases["sync"] > 0.0
            assert all(value >= 0.0 for value in phases.values())
        finally:
            engine.close()

    def test_killed_worker_raises_shard_pool_error(self, monkeypatch):
        """A worker dying mid-run must surface as a typed
        ShardPoolError naming the worker and protocol phase, not hang
        until the 120 s default timeout or raise a bare pipe error."""
        from repro.errors import ShardPoolError

        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "2")
        topology = CompleteTopology(160)
        values = np.random.default_rng(25).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(topology, values, seed=77, backend="sharded:2")
        )
        try:
            engine.run(2, record="end")
            victim = engine._backend._procs[1]
            victim.terminate()
            victim.join(timeout=5)
            with pytest.raises(ShardPoolError) as excinfo:
                engine.run(4, record="end")
            error = excinfo.value
            assert "sharded worker pool failed during" in str(error)
            assert error.phase in ("command", "apply", "barrier", "remap")
            assert error.worker is not None
        finally:
            # close() stays orderly after the failure: the segments
            # were parked, so release_matrix still detaches a copy
            engine.close()

    def test_close_after_failure_is_clean(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "2")
        backend = ShardedBackend(workers=2)
        matrix = np.random.default_rng(26).normal(0.0, 1.0, (64, 1))
        backend.apply_exchanges(
            matrix, (MeanAggregate(),),
            np.arange(32), np.arange(32, 64),
        )
        backend._procs[0].terminate()
        backend._procs[0].join(timeout=5)
        backend.close()
        assert backend.active_workers == 0


class TestAutoWorkers:
    def test_auto_spec_parses(self):
        assert parse_backend_spec("sharded:auto") == ("sharded", "auto")

    def test_auto_backend_resolves_worker_count(self):
        backend = make_backend("sharded:auto")
        assert backend.workers >= 1
        backend.close()

    def test_auto_inlines_small_matrices(self):
        """Below the inline threshold `auto` must not spawn a pool at
        all — sharded:auto is never slower than vectorized at
        degenerate sizes — and still match the oracle bitwise."""
        topology = CompleteTopology(180)
        values = np.random.default_rng(27).normal(5.0, 2.0, topology.n)
        kwargs = dict(topology=topology, values=values, seed=78)
        ref_matrix, _, _ = run_engine("reference", kwargs, cycles=6)
        engine = GossipEngine(
            Scenario(backend="sharded:auto", **kwargs)
        )
        try:
            engine.run(6)
            assert engine._backend.inline is True
            assert engine._backend.active_workers == 0
            assert np.array_equal(engine.matrix, ref_matrix)
        finally:
            engine.close()

    def test_explicit_worker_count_never_inlines(self):
        topology = CompleteTopology(64)
        values = np.random.default_rng(28).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(topology, values, seed=79, backend="sharded:2")
        )
        try:
            assert engine._backend.inline is False
            assert engine._backend.active_workers == 2
        finally:
            engine.close()

    def test_growth_past_threshold_promotes_to_pool(self, monkeypatch):
        """An `auto` engine that starts tiny but grows past the inline
        threshold must promote to the shared-memory pool mid-run and
        stay bitwise-equal to the oracle across the promotion.

        `auto` on a single schedulable core stays inline at every size
        (see test_auto_single_core_stays_inline), so pretend the box
        has two cores to exercise the promotion machinery."""
        import repro.kernel.backends.sharded as sharded_module
        monkeypatch.setattr(sharded_module, "default_workers", lambda: 2)
        monkeypatch.setenv("REPRO_SHARD_INLINE", "100")
        topology = CompleteTopology(48)
        values = np.random.default_rng(29).normal(5.0, 2.0, topology.n)
        kwargs = dict(
            topology=topology, values=values,
            churn=ChurnSpec(
                model=ConstantRateChurn(joins_per_cycle=25,
                                        leaves_per_cycle=1),
            ),
            seed=80,
        )
        ref_matrix, ref_alive, _ = run_engine("reference", kwargs, cycles=10)
        engine = GossipEngine(Scenario(backend="sharded:auto", **kwargs))
        try:
            engine.run(10)
            assert engine._backend.inline is False
            assert engine._backend.active_workers >= 1
            assert np.array_equal(engine.matrix, ref_matrix)
            assert np.array_equal(engine.alive_mask, ref_alive)
        finally:
            engine.close()

    def test_auto_single_core_stays_inline(self, monkeypatch):
        """With one schedulable core a pool cannot overlap anything —
        it only adds IPC on top of the same serial work — so `auto`
        stays in-process at *any* size, even past the threshold."""
        import repro.kernel.backends.sharded as sharded_module
        monkeypatch.setattr(sharded_module, "default_workers", lambda: 1)
        monkeypatch.setenv("REPRO_SHARD_INLINE", "100")
        backend = ShardedBackend(workers="auto")
        try:
            matrix = backend.adopt_matrix(
                np.random.default_rng(31).normal(0.0, 1.0, (4096, 1))
            )
            assert backend.inline is True
            assert backend.active_workers == 0
            grown = backend.grow_matrix(matrix, 8192)
            assert backend.inline is True
            assert backend.active_workers == 0
            assert grown.shape == (8192, 1)
        finally:
            backend.close()

    def test_inline_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_INLINE", "many")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers="auto")
        monkeypatch.setenv("REPRO_SHARD_INLINE", "-5")
        with pytest.raises(ConfigurationError):
            ShardedBackend(workers="auto")


class TestSingleCopyGrowth:
    def test_churn_growth_costs_one_copy_per_growth(self):
        """The growth path used to copy twice (engine vstack into a
        heap array, then adopt_matrix into the new segment); now the
        backend maps the larger segment and copies once. The counter
        covers the initial adoption plus exactly one copy per
        capacity-growth event."""
        topology = CompleteTopology(64)
        values = np.random.default_rng(30).normal(5.0, 2.0, topology.n)
        engine = GossipEngine(
            Scenario(
                topology, values,
                churn=ChurnSpec(
                    model=ConstantRateChurn(joins_per_cycle=40,
                                            leaves_per_cycle=2),
                ),
                seed=81, backend="sharded:2",
            )
        )
        try:
            growths = 0
            capacity = engine.capacity
            for _ in range(12):
                engine.run_cycle()
                if engine.capacity > capacity:
                    growths += 1
                    capacity = engine.capacity
            assert growths >= 2  # the workload must actually grow
            assert engine._backend.adopt_copies == 1 + growths
        finally:
            engine.close()

    def test_epoch_instance_rebuild_costs_zero_copies(self):
        """Epoch restarts that change the instance count allocate a
        fresh zero-filled segment — no heap zeros, no adopt copy."""
        n = 64
        values = np.random.default_rng(31).normal(5.0, 2.0, n)

        def reseed(context):
            k = 1 + (context.epoch % 2)
            return np.ones((len(context.participants), k))

        engine = GossipEngine(
            Scenario(
                CompleteTopology(n), values,
                epochs=EpochSpec(cycles_per_epoch=2, reseed=reseed),
                seed=82, backend="sharded:1",
            )
        )
        try:
            engine.run(10)  # 5 epochs, ~5 instance-count rebuilds
            assert engine._backend.adopt_copies == 1  # initial adopt only
        finally:
            engine.close()


class TestBackendSpecs:
    def test_make_backend_sharded_default_workers(self):
        backend = make_backend("sharded")
        assert isinstance(backend, ShardedBackend)
        assert backend.workers >= 1
        backend.close()

    def test_make_backend_sharded_explicit_workers(self):
        backend = make_backend("sharded:3")
        assert backend.workers == 3
        backend.close()

    @pytest.mark.parametrize("spec", [
        "gpu", "sharded:two", "sharded:0", "sharded:-1", "sharded:",
        "vectorized:4", "auto",
    ])
    def test_bad_specs_raise_typed_error(self, spec):
        with pytest.raises(BackendSpecError) as excinfo:
            make_backend(spec)
        error = excinfo.value
        assert error.spec == spec
        assert "sharded" in str(error)
        assert error.valid_backends  # the full list rides on the error

    def test_parse_accepts_auto_when_allowed(self):
        assert parse_backend_spec("auto", allow_auto=True) == ("auto", None)
        assert parse_backend_spec("sharded:8") == ("sharded", 8)

    def test_scenario_validates_spec(self):
        topology = CompleteTopology(16)
        values = np.zeros(16)
        with pytest.raises(BackendSpecError):
            Scenario(topology, values, backend="sharded:nope")
        # well-formed parameterized specs are accepted and preserved
        scenario = Scenario(topology, values, backend="sharded:2")
        assert scenario.resolve_backend() == "sharded:2"

    def test_auto_never_resolves_to_sharded(self):
        topology = CompleteTopology(16)
        scenario = Scenario(topology, np.zeros(16), backend="auto")
        assert scenario.resolve_backend() in ("reference", "vectorized")


class TestCliBackendSpecs:
    def test_unknown_backend_lists_valid_forms(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["scale", "--n", "64", "--backend", "bogus"])
        assert excinfo.value.code == 2
        stderr = capsys.readouterr().err
        assert "valid backends" in stderr
        assert "'sharded:<workers>'" in stderr

    def test_malformed_sharded_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["figure3a", "--backend", "sharded:zero"])
        assert excinfo.value.code == 2
        assert "not an integer" in capsys.readouterr().err

    def test_workers_requires_sharded(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["scale", "--n", "64", "--backend", "vectorized",
                      "--workers", "2"])
        assert excinfo.value.code == 2
        assert "--workers requires --backend sharded" in (
            capsys.readouterr().err
        )

    def test_workers_conflicts_with_parameterized_spec(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["scale", "--n", "64", "--backend", "sharded:2",
                      "--workers", "2"])
        assert excinfo.value.code == 2

    def test_scale_runs_sharded_via_workers_flag(self, capsys):
        assert cli_main(["scale", "--n", "300", "--cycles", "2",
                         "--backend", "sharded", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded:2" in out

    def test_scale_comparison_list(self, capsys):
        assert cli_main(["scale", "--n", "300", "--cycles", "2",
                         "--backend", "reference,sharded:1"]) == 0
        out = capsys.readouterr().out
        assert "reference" in out and "sharded:1" in out

    def test_workers_auto_is_default_for_bare_sharded(self, capsys):
        """`--backend sharded` with the default `--workers auto` folds
        to sharded:auto (affinity worker count + inline fallback)."""
        assert cli_main(["scale", "--n", "300", "--cycles", "2",
                         "--backend", "sharded"]) == 0
        assert "sharded:auto" in capsys.readouterr().out

    def test_workers_auto_inert_for_other_backends(self, capsys):
        """The auto default must not break non-sharded backends or
        comparison lists."""
        assert cli_main(["scale", "--n", "300", "--cycles", "2",
                         "--backend", "vectorized",
                         "--workers", "auto"]) == 0
        assert "vectorized" in capsys.readouterr().out

    def test_backend_sharded_auto_spec(self, capsys):
        assert cli_main(["scale", "--n", "300", "--cycles", "2",
                         "--backend", "sharded:auto"]) == 0
        assert "sharded:auto" in capsys.readouterr().out

    def test_workers_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["scale", "--n", "64", "--backend", "sharded",
                      "--workers", "some"])
        assert excinfo.value.code == 2
        assert "positive integer or 'auto'" in capsys.readouterr().err
