"""Adversary suite: spec validation, semantics, backend equivalence.

Every adversarial effect is engine-side (the adversary set is drawn
from the engine RNG, corruption is an engine matrix write, filtering
joins the fused ok-mask, lies apply at observation time), so the
bitwise backend-equivalence contract must hold under any
:class:`AdversarySpec` — that sweep is the core of this module.
Alongside it: constructor validation, the per-kind semantics (inject
poisons state, lying does not, partition seals the boundary, eclipse
redirects partner draws) and the fraction edge cases 0.0 / 1.0 /
single explicit node.
"""

import numpy as np
import pytest

from repro.core import MeanAggregate, MinAggregate
from repro.errors import ConfigurationError
from repro.failures import ConstantRateChurn
from repro.kernel import (
    ADVERSARY_KINDS,
    AdversarySpec,
    EpochSpec,
    GossipEngine,
    PairProtocolSpec,
    Scenario,
)
from repro.simulator.trace import ExchangeTrace
from repro.topology import CompleteTopology, RandomRegularTopology

N = 400
CYCLES = 6
SEED = 97


def make_scenario(spec, backend="reference", topology=None, **kwargs):
    topology = topology if topology is not None else CompleteTopology(N)
    values = np.random.default_rng(SEED).normal(10.0, 4.0, topology.n)
    return Scenario(
        topology, values, adversary=spec, seed=SEED, backend=backend, **kwargs
    )


def run_snapshot(scenario, cycles=CYCLES):
    """Run to completion and return the bitwise-comparable snapshot."""
    engine = GossipEngine(scenario)
    try:
        result = engine.run(cycles)
        return (
            engine.matrix,
            result.exchange_counts,
            engine.reported_column(),
            engine.adversary_mask,
        )
    finally:
        engine.close()


def assert_snapshots_equal(ref, other):
    assert np.array_equal(ref[0], other[0])
    assert ref[1] == other[1]
    assert np.array_equal(ref[2], other[2])
    assert np.array_equal(ref[3], other[3])


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown adversary kind"):
            AdversarySpec(kind="bribery")

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_fraction_out_of_range(self, fraction):
        with pytest.raises(ConfigurationError, match="fraction"):
            AdversarySpec(kind="lying", fraction=fraction)

    @pytest.mark.parametrize("value", [np.nan, np.inf])
    def test_non_finite_value_rejected(self, value):
        with pytest.raises(ConfigurationError, match="finite"):
            AdversarySpec(kind="inject", value=value)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            AdversarySpec(kind="lying", fraction=0.1, start=5, end=5)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError, match="start"):
            AdversarySpec(kind="lying", fraction=0.1, start=-1)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            AdversarySpec(kind="lying", nodes=(3, 3, 5))

    def test_negative_node_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            AdversarySpec(kind="lying", nodes=(-2, 5))

    def test_nodes_normalized_sorted(self):
        spec = AdversarySpec(kind="lying", nodes=[9, 1, 4])
        assert spec.nodes == (1, 4, 9)

    def test_scenario_rejects_out_of_range_nodes(self):
        spec = AdversarySpec(kind="lying", nodes=(N + 7,))
        with pytest.raises(ConfigurationError, match="exceed"):
            make_scenario(spec)

    def test_scenario_rejects_non_spec_adversary(self):
        with pytest.raises(ConfigurationError, match="AdversarySpec"):
            make_scenario({"kind": "lying"})

    def test_eclipse_rejected_with_churn(self):
        spec = AdversarySpec(kind="eclipse", fraction=0.1)
        with pytest.raises(ConfigurationError, match="eclipse"):
            make_scenario(
                spec,
                churn=ConstantRateChurn(joins_per_cycle=2, leaves_per_cycle=2),
            )

    def test_eclipse_rejected_with_epochs(self):
        spec = AdversarySpec(kind="eclipse", fraction=0.1)
        with pytest.raises(ConfigurationError, match="eclipse"):
            make_scenario(spec, epochs=EpochSpec(cycles_per_epoch=5))

    def test_pair_mode_rejects_adversary(self):
        spec = AdversarySpec(kind="lying", fraction=0.1)
        with pytest.raises(ConfigurationError, match="adversaries"):
            make_scenario(spec, pair_protocol=PairProtocolSpec(selector="seq"))


class TestSpecResolution:
    def test_active_window(self):
        spec = AdversarySpec(kind="lying", fraction=0.1, start=3, end=7)
        assert [spec.active_at(c) for c in (0, 2, 3, 6, 7, 40)] == [
            False, False, True, True, False, False,
        ]

    def test_open_window_never_deactivates(self):
        spec = AdversarySpec(kind="lying", fraction=0.1)
        assert spec.active_at(0) and spec.active_at(10**6)

    def test_fraction_zero_draws_nothing(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        ids = AdversarySpec(kind="lying", fraction=0.0).resolve_nodes(N, rng)
        assert len(ids) == 0
        # no RNG consumed: downstream draws stay aligned with the
        # adversary-free run
        assert rng.bit_generator.state["state"]["state"] == before

    def test_fraction_one_is_everyone(self):
        rng = np.random.default_rng(0)
        ids = AdversarySpec(kind="lying", fraction=1.0).resolve_nodes(N, rng)
        assert np.array_equal(ids, np.arange(N))

    def test_explicit_nodes_skip_rng(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        spec = AdversarySpec(kind="lying", nodes=(7, 2))
        assert np.array_equal(spec.resolve_nodes(N, rng), [2, 7])
        assert rng.bit_generator.state["state"]["state"] == before

    def test_fraction_rounds_to_count(self):
        rng = np.random.default_rng(0)
        ids = AdversarySpec(kind="lying", fraction=0.25).resolve_nodes(
            400, rng
        )
        assert len(ids) == 100
        assert np.array_equal(ids, np.sort(ids))
        assert len(np.unique(ids)) == 100


class TestEclipseRedirects:
    def test_csr_smallest_adversarial_neighbor(self):
        topology = RandomRegularTopology(60, 6, seed=5)
        mask = np.zeros(60, dtype=bool)
        mask[[4, 17, 33]] = True
        spec = AdversarySpec(kind="eclipse", nodes=(4, 17, 33))
        redirect = spec.eclipse_redirects(
            topology, mask, np.random.default_rng(0)
        )
        assert redirect.shape == (60,)
        assert (redirect[mask] == -1).all()
        for node in np.flatnonzero(~mask):
            captors = [
                nb for nb in np.asarray(topology.neighbors(node)) if mask[nb]
            ]
            expected = min(captors) if captors else -1
            assert redirect[node] == expected

    def test_complete_overlay_captures_everyone(self):
        topology = CompleteTopology(50)
        mask = np.zeros(50, dtype=bool)
        mask[[10, 20]] = True
        redirect = AdversarySpec(kind="eclipse", fraction=0.04).eclipse_redirects(
            topology, mask, np.random.default_rng(1)
        )
        honest = ~mask
        assert np.isin(redirect[honest], [10, 20]).all()
        assert (redirect[mask] == -1).all()

    @pytest.mark.parametrize("count", [0, 50])
    def test_degenerate_sets_capture_nothing(self, count):
        topology = CompleteTopology(50)
        mask = np.zeros(50, dtype=bool)
        mask[:count] = True
        redirect = AdversarySpec(kind="eclipse", fraction=1.0).eclipse_redirects(
            topology, mask, np.random.default_rng(2)
        )
        assert (redirect == -1).all()


# one sharded worker count is exercised per kind right here; the full
# 1/2/4 ladder rides benchmarks/bench_adversary.py where process spawn
# cost is amortized over the bigger run
EQUIVALENCE_BACKENDS = ("vectorized", "sharded:1", "sharded:2", "sharded:4")


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", EQUIVALENCE_BACKENDS)
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_bitwise_under_every_kind(self, kind, backend):
        topology = (
            RandomRegularTopology(N, 8, seed=SEED)
            if kind == "eclipse"
            else None
        )
        spec = AdversarySpec(kind=kind, fraction=0.1, value=100.0)
        ref = run_snapshot(make_scenario(spec, "reference", topology))
        other = run_snapshot(make_scenario(spec, backend, topology))
        assert_snapshots_equal(ref, other)

    @pytest.mark.parametrize("kind", ("inject", "lying", "partition"))
    def test_bitwise_under_churn(self, kind):
        spec = AdversarySpec(kind=kind, fraction=0.1, value=100.0)
        churn = ConstantRateChurn(joins_per_cycle=5, leaves_per_cycle=3)
        ref = run_snapshot(make_scenario(spec, "reference", churn=churn))
        vec = run_snapshot(make_scenario(spec, "vectorized", churn=churn))
        assert_snapshots_equal(ref, vec)

    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_fraction_zero_is_bitwise_no_adversary(self, kind):
        spec = AdversarySpec(kind=kind, fraction=0.0, value=100.0)
        with_spec = run_snapshot(make_scenario(spec))
        without = run_snapshot(make_scenario(None))
        assert np.array_equal(with_spec[0], without[0])
        assert with_spec[1] == without[1]
        assert np.array_equal(with_spec[2], without[2])
        assert not with_spec[3].any()


class TestFractionEdgeCases:
    def test_everyone_lying_reports_only_the_lie(self):
        spec = AdversarySpec(kind="lying", fraction=1.0, value=-3.0)
        engine = GossipEngine(make_scenario(spec))
        engine.run(2)
        assert (engine.reported_column() == -3.0).all()
        # ... but the state itself converged honestly
        assert engine.alive_column().mean() == pytest.approx(10.0, abs=1.0)
        assert len(engine.honest_column()) == 0

    def test_everyone_injecting_fixes_the_state(self):
        spec = AdversarySpec(kind="inject", fraction=1.0, value=42.0)
        engine = GossipEngine(make_scenario(spec))
        engine.run(1)
        assert (engine.matrix == 42.0).all()

    def test_single_explicit_node(self):
        spec = AdversarySpec(kind="lying", nodes=(17,), value=1e6)
        engine = GossipEngine(make_scenario(spec))
        engine.run(2)
        mask = engine.adversary_mask
        assert np.flatnonzero(mask).tolist() == [17]
        reports = engine.reported_column()
        assert reports[17] == 1e6
        assert (reports[~mask] != 1e6).all()
        assert engine.honest_mask.sum() == N - 1


class TestLyingSemantics:
    def test_state_is_untouched(self):
        # drawing the adversary set consumes engine RNG, so the honest
        # baseline must draw the same mask: a never-active window keeps
        # the RNG stream aligned while disarming the lie
        spec = AdversarySpec(kind="lying", fraction=0.2, value=1e9)
        inert = AdversarySpec(
            kind="lying", fraction=0.2, value=1e9, start=CYCLES + 1
        )
        lied = run_snapshot(make_scenario(spec))
        honest = run_snapshot(make_scenario(inert))
        # identical trajectories: only the reported view differs
        assert np.array_equal(lied[0], honest[0])
        assert lied[1] == honest[1]
        assert not np.array_equal(lied[2], honest[2])

    def test_window_bounds_the_lie(self):
        spec = AdversarySpec(
            kind="lying", nodes=(0,), value=1e9, start=1, end=2
        )
        engine = GossipEngine(make_scenario(spec))
        assert engine.reported_column()[0] != 1e9  # cycle 0: not yet
        engine.run(1)
        assert engine.reported_column()[0] == 1e9  # cycle 1: active
        engine.run(1)
        assert engine.reported_column()[0] != 1e9  # cycle 2: expired

    def test_lying_applies_to_every_instance(self):
        spec = AdversarySpec(kind="lying", fraction=0.25, value=7.0)
        engine = GossipEngine(
            make_scenario(
                spec,
                aggregates={"mean": MeanAggregate(), "min": MinAggregate()},
            )
        )
        engine.run(2)
        mask = engine.adversary_mask
        for name in ("mean", "min"):
            assert (engine.reported_column(name)[mask] == 7.0).all()


class TestInjectSemantics:
    def test_never_active_leaves_state_honest(self):
        # an inert inject run must match a state-neutral (lying) run
        # with the same mask draw bitwise: outside its window the
        # adversary touches nothing
        spec = AdversarySpec(
            kind="inject", fraction=0.2, value=1e9, start=CYCLES + 1
        )
        neutral = AdversarySpec(
            kind="lying", fraction=0.2, value=1e9, start=CYCLES + 1
        )
        inert = run_snapshot(make_scenario(spec))
        baseline = run_snapshot(make_scenario(neutral))
        assert np.array_equal(inert[0], baseline[0])
        assert inert[1] == baseline[1]

    def test_injected_mass_poisons_honest_state(self):
        spec = AdversarySpec(kind="inject", fraction=0.2, value=1000.0)
        engine = GossipEngine(make_scenario(spec))
        engine.run(CYCLES)
        # honest values drift toward the injected mass — inject is the
        # attack that robust read-outs can NOT undo
        assert engine.honest_column().mean() > 50.0


class TestPartitionSemantics:
    def test_no_exchange_crosses_the_boundary(self):
        spec = AdversarySpec(kind="partition", fraction=0.3)
        trace = ExchangeTrace()
        engine = GossipEngine(make_scenario(spec), trace=trace)
        engine.run(CYCLES)
        mask = engine.adversary_mask
        assert len(trace) > 0
        for record in trace:
            assert mask[record.initiator] == mask[record.responder]

    def test_honest_mass_is_conserved(self):
        spec = AdversarySpec(kind="partition", fraction=0.3)
        engine = GossipEngine(make_scenario(spec))
        before = engine.honest_column().sum()
        engine.run(CYCLES)
        after = engine.honest_column().sum()
        assert after == pytest.approx(before, rel=1e-12)


class TestEclipseSemantics:
    def test_captured_initiators_reach_only_their_captor(self):
        topology = RandomRegularTopology(N, 8, seed=SEED)
        spec = AdversarySpec(kind="eclipse", fraction=0.1)
        trace = ExchangeTrace()
        scenario = make_scenario(spec, topology=topology)
        engine = GossipEngine(scenario, trace=trace)
        engine.run(CYCLES)
        mask = engine.adversary_mask
        redirect = spec.eclipse_redirects(
            topology, mask, np.random.default_rng(0)
        )
        captured = {
            int(node)
            for node in np.flatnonzero(redirect >= 0)
        }
        seen_captured = 0
        for record in trace:
            if record.initiator in captured:
                seen_captured += 1
                assert record.responder == redirect[record.initiator]
                assert mask[record.responder]
        assert seen_captured > 0


class TestObservers:
    def test_masks_without_adversary(self):
        engine = GossipEngine(make_scenario(None))
        assert not engine.adversary_mask.any()
        assert engine.honest_mask.all()
        assert np.array_equal(engine.reported_column(), engine.alive_column())

    def test_honest_mask_excludes_adversaries(self):
        spec = AdversarySpec(kind="lying", fraction=0.25, value=0.0)
        engine = GossipEngine(make_scenario(spec))
        mask = engine.adversary_mask
        assert mask.sum() == 100
        assert np.array_equal(engine.honest_mask, ~mask)
        assert len(engine.honest_column()) == N - 100
