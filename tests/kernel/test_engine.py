"""Tests for kernel.engine — the unified gossip engine."""

import numpy as np
import pytest

from repro.core import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    moment_values,
)
from repro.errors import ConfigurationError, SimulationError
from repro.failures import CrashPlan
from repro.failures.message_loss import burst_loss
from repro.kernel import GossipEngine, Scenario, run_scenario
from repro.simulator.trace import ExchangeTrace
from repro.topology import CompleteTopology


@pytest.fixture
def topo():
    return CompleteTopology(200)


@pytest.fixture
def values(topo):
    return np.random.default_rng(3).normal(5.0, 2.0, topo.n)


def multi_scenario(topo, values, **kwargs):
    return Scenario(
        topo,
        values,
        aggregates={
            "mean": MeanAggregate(),
            "m2": MeanAggregate(),
            "max": MaxAggregate(),
            "min": MinAggregate(),
        },
        initial={"m2": moment_values(values, 2)},
        **kwargs,
    )


class TestSinglePassMultiAggregate:
    def test_all_instances_converge_in_one_run(self, topo, values):
        engine = GossipEngine(multi_scenario(topo, values, seed=1))
        engine.run(20)
        assert engine.mean("mean") == pytest.approx(values.mean(), abs=1e-12)
        assert np.all(engine.column("max") == values.max())
        assert np.all(engine.column("min") == values.min())
        assert engine.mean("m2") == pytest.approx((values ** 2).mean(),
                                                  abs=1e-9)
        assert engine.variance("mean") < 1e-10

    def test_result_carries_every_instance(self, topo, values):
        result = run_scenario(multi_scenario(topo, values, seed=2, cycles=5))
        assert result.instance_names == ("mean", "m2", "max", "min")
        for name in result.instance_names:
            assert len(result.variances[name]) == 6
            assert len(result.means[name]) == 6
        assert len(result.exchange_counts) == 5

    def test_unknown_instance_rejected(self, topo, values):
        engine = GossipEngine(multi_scenario(topo, values, seed=3))
        with pytest.raises(ConfigurationError):
            engine.column("nope")

    def test_exchanges_shared_across_instances(self, topo, values):
        """One pass means one exchange stream: the same count regardless
        of how many instances ride on it."""
        single = GossipEngine(Scenario(topo, values, seed=4))
        multi = GossipEngine(multi_scenario(topo, values, seed=4))
        assert single.run_cycle() == multi.run_cycle()


class TestFailureMachinery:
    def test_crash_plan_applied_at_cycle(self, topo, values):
        plan = CrashPlan()
        plan.add(2, [0, 1, 2, 3])
        scenario = Scenario(topo, values, crash_plan=plan, seed=5)
        result = GossipEngine(scenario).run(4)
        assert result.alive_counts[:3] == [topo.n, topo.n, topo.n]
        assert result.alive_counts[3:] == [topo.n - 4, topo.n - 4]

    def test_manual_crash_between_runs(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=6))
        engine.run(1)
        engine.crash(range(50))
        assert engine.alive_count == topo.n - 50
        engine.run(20)
        assert engine.variance() < 1e-8

    def test_crash_out_of_range_rejected(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=7))
        with pytest.raises(ConfigurationError):
            engine.crash([topo.n])

    def test_loss_schedule_gates_exchanges(self, topo, values):
        scenario = Scenario(
            topo, values, loss_schedule=burst_loss(0.0, 1.0, 1, 2), seed=8
        )
        result = GossipEngine(scenario).run(3)
        assert result.exchange_counts[0] == topo.n
        assert result.exchange_counts[1] == 0  # the burst cycle
        assert result.exchange_counts[2] == topo.n


class TestRecordingModes:
    def test_record_end_keeps_endpoints_only(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=9))
        result = engine.run(10, record="end")
        assert len(result.variances["mean"]) == 2
        assert len(result.exchange_counts) == 10
        full = GossipEngine(Scenario(topo, values, seed=9)).run(10)
        assert result.variances["mean"][-1] == full.variances["mean"][-1]

    def test_bad_record_mode_rejected(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=10))
        with pytest.raises(ConfigurationError):
            engine.run(1, record="sometimes")

    def test_negative_cycles_rejected(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=11))
        with pytest.raises(ConfigurationError):
            engine.run(-1)


class TestTraceRouting:
    def test_trace_forces_reference_backend(self, topo, values):
        scenario = Scenario(topo, values, backend="vectorized", seed=12)
        engine = GossipEngine(scenario, trace=ExchangeTrace())
        assert engine.backend_name == "reference"
        engine.run(2)

    def test_trace_rejected_for_multi_instance(self, topo, values):
        with pytest.raises(SimulationError):
            GossipEngine(
                multi_scenario(topo, values, seed=13), trace=ExchangeTrace()
            )
