"""Tests for kernel.engine — the unified gossip engine."""

import numpy as np
import pytest

from repro.core import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    moment_values,
)
from repro.errors import ConfigurationError, SimulationError
from repro.failures import CrashPlan
from repro.failures.message_loss import burst_loss
from repro.kernel import GossipEngine, Scenario, run_scenario
from repro.simulator.trace import ExchangeTrace
from repro.topology import CompleteTopology


@pytest.fixture
def topo():
    return CompleteTopology(200)


@pytest.fixture
def values(topo):
    return np.random.default_rng(3).normal(5.0, 2.0, topo.n)


def multi_scenario(topo, values, **kwargs):
    return Scenario(
        topo,
        values,
        aggregates={
            "mean": MeanAggregate(),
            "m2": MeanAggregate(),
            "max": MaxAggregate(),
            "min": MinAggregate(),
        },
        initial={"m2": moment_values(values, 2)},
        **kwargs,
    )


class TestSinglePassMultiAggregate:
    def test_all_instances_converge_in_one_run(self, topo, values):
        engine = GossipEngine(multi_scenario(topo, values, seed=1))
        engine.run(20)
        assert engine.mean("mean") == pytest.approx(values.mean(), abs=1e-12)
        assert np.all(engine.column("max") == values.max())
        assert np.all(engine.column("min") == values.min())
        assert engine.mean("m2") == pytest.approx((values ** 2).mean(),
                                                  abs=1e-9)
        assert engine.variance("mean") < 1e-10

    def test_result_carries_every_instance(self, topo, values):
        result = run_scenario(multi_scenario(topo, values, seed=2, cycles=5))
        assert result.instance_names == ("mean", "m2", "max", "min")
        for name in result.instance_names:
            assert len(result.variances[name]) == 6
            assert len(result.means[name]) == 6
        assert len(result.exchange_counts) == 5

    def test_unknown_instance_rejected(self, topo, values):
        engine = GossipEngine(multi_scenario(topo, values, seed=3))
        with pytest.raises(ConfigurationError):
            engine.column("nope")

    def test_exchanges_shared_across_instances(self, topo, values):
        """One pass means one exchange stream: the same count regardless
        of how many instances ride on it."""
        single = GossipEngine(Scenario(topo, values, seed=4))
        multi = GossipEngine(multi_scenario(topo, values, seed=4))
        assert single.run_cycle() == multi.run_cycle()


class TestFailureMachinery:
    def test_crash_plan_applied_at_cycle(self, topo, values):
        plan = CrashPlan()
        plan.add(2, [0, 1, 2, 3])
        scenario = Scenario(topo, values, crash_plan=plan, seed=5)
        result = GossipEngine(scenario).run(4)
        assert result.alive_counts[:3] == [topo.n, topo.n, topo.n]
        assert result.alive_counts[3:] == [topo.n - 4, topo.n - 4]

    def test_manual_crash_between_runs(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=6))
        engine.run(1)
        engine.crash(range(50))
        assert engine.alive_count == topo.n - 50
        engine.run(20)
        assert engine.variance() < 1e-8

    def test_crash_out_of_range_rejected(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=7))
        with pytest.raises(ConfigurationError):
            engine.crash([topo.n])

    def test_loss_schedule_gates_exchanges(self, topo, values):
        scenario = Scenario(
            topo, values, loss_schedule=burst_loss(0.0, 1.0, 1, 2), seed=8
        )
        result = GossipEngine(scenario).run(3)
        assert result.exchange_counts[0] == topo.n
        assert result.exchange_counts[1] == 0  # the burst cycle
        assert result.exchange_counts[2] == topo.n


class TestCyclePlan:
    """The reusable per-cycle scratch: buffers stay put while capacity
    is unchanged, and the cached initiator set invalidates on every
    mask mutation."""

    def test_buffers_reused_across_cycles(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=21))
        engine.run_cycle()
        plan = engine._plan
        buffers = (plan.partners, plan.ok, plan.out_i, plan.out_j)
        engine.run(5)
        assert (plan.partners, plan.ok, plan.out_i, plan.out_j) == buffers

    def test_initiator_cache_reused_while_masks_static(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=22))
        engine.run_cycle()
        cached = engine._plan._initiators
        engine.run_cycle()
        assert engine._plan._initiators is cached

    def test_crash_invalidates_initiator_cache(self, topo, values):
        """Semantic regression guard for the cache: a crash between
        cycles must drop the victims from the initiator set (both
        backends share the engine, so the cross-backend suite alone
        cannot catch a stale cache)."""
        engine = GossipEngine(Scenario(topo, values, seed=23))
        engine.run_cycle()
        before = engine.matrix
        victims = list(range(0, 60))
        engine.crash(victims)
        result = engine.run(3)
        # crashed rows are frozen: nobody initiates from or lands an
        # exchange on a dead slot
        assert np.array_equal(engine.matrix[victims], before[victims])
        assert all(count <= topo.n - 60 for count in result.exchange_counts)

    def test_capacity_growth_resizes_buffers(self):
        from repro.failures import ConstantRateChurn

        n = 64
        engine = GossipEngine(
            Scenario(
                CompleteTopology(n),
                np.random.default_rng(1).normal(0, 1, n),
                churn=ConstantRateChurn(joins_per_cycle=30,
                                        leaves_per_cycle=0),
                seed=24,
            )
        )
        engine.run(10)
        assert engine.alive_count == n + 300
        assert len(engine._plan.partners) >= engine.alive_count
        # the last cycle's exchange arrays covered every participant
        assert engine._plan.capacity == engine.capacity


class TestStaticFastPath:
    """Without loss/partition specs (and before any mask mutation) the
    engine skips the mask pass and compaction: the exchanges ARE
    (initiators, partners). The fast path must deactivate the moment
    a crash makes the alive mask non-trivial."""

    def test_every_initiation_succeeds(self, topo, values):
        result = GossipEngine(Scenario(topo, values, seed=25)).run(4)
        assert result.exchange_counts == [topo.n] * 4

    def test_bitwise_equal_to_filtered_path(self, topo, values):
        """Forcing the filtered path with an always-zero loss schedule
        must reproduce the fast path bit for bit (neither consumes
        extra RNG)."""
        fast = GossipEngine(Scenario(topo, values, seed=26))
        slow = GossipEngine(
            Scenario(topo, values, loss_schedule=lambda cycle: 0.0, seed=26)
        )
        assert fast._no_failure_filters and not slow._no_failure_filters
        fast_result = fast.run(6)
        slow_result = slow.run(6)
        assert np.array_equal(fast.matrix, slow.matrix)
        assert fast_result.exchange_counts == slow_result.exchange_counts

    def test_manual_crash_disables_fast_path(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=27))
        engine.run(2)
        before = engine.matrix
        victims = list(range(30))
        engine.crash(victims)
        result = engine.run(4)
        # dead rows frozen and contacted-dead exchanges dropped — the
        # fast path would have kept scattering onto crashed slots
        assert np.array_equal(engine.matrix[victims], before[victims])
        assert all(count <= topo.n - 30 for count in result.exchange_counts)

    def test_crash_plan_scenarios_start_fast_then_filter(self, topo, values):
        plan = CrashPlan()
        plan.add(2, list(range(40)))
        engine = GossipEngine(Scenario(topo, values, crash_plan=plan, seed=28))
        result = engine.run(5)
        # cycles before the crash ran the fast path (full exchange
        # counts); afterwards the mask pass filters dead partners
        assert result.exchange_counts[0] == topo.n
        assert all(count <= topo.n - 40 for count in result.exchange_counts[2:])


class TestEngineLifecycle:
    def test_context_manager_closes_backend(self, topo, values):
        with GossipEngine(Scenario(topo, values, seed=29)) as engine:
            engine.run(1)
        engine.close()  # idempotent on in-process backends


class TestRecordingModes:
    def test_record_end_keeps_endpoints_only(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=9))
        result = engine.run(10, record="end")
        assert len(result.variances["mean"]) == 2
        assert len(result.exchange_counts) == 10
        full = GossipEngine(Scenario(topo, values, seed=9)).run(10)
        assert result.variances["mean"][-1] == full.variances["mean"][-1]

    def test_bad_record_mode_rejected(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=10))
        with pytest.raises(ConfigurationError):
            engine.run(1, record="sometimes")

    def test_negative_cycles_rejected(self, topo, values):
        engine = GossipEngine(Scenario(topo, values, seed=11))
        with pytest.raises(ConfigurationError):
            engine.run(-1)


class TestTraceRouting:
    def test_trace_forces_reference_backend(self, topo, values):
        scenario = Scenario(topo, values, backend="vectorized", seed=12)
        engine = GossipEngine(scenario, trace=ExchangeTrace())
        assert engine.backend_name == "reference"
        engine.run(2)

    def test_trace_rejected_for_multi_instance(self, topo, values):
        with pytest.raises(SimulationError):
            GossipEngine(
                multi_scenario(topo, values, seed=13), trace=ExchangeTrace()
            )
