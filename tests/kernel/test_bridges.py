"""Bridges between the kernel and the surrounding layers:
MultiAggregateSpec (core.multi), the scenario-native analysis runners,
and AggregationService backend parity."""

import numpy as np
import pytest

from repro.analysis import replicate_scenario, sweep_scenario
from repro.core import (
    AggregationService,
    MaxAggregate,
    MeanAggregate,
    MultiAggregateSpec,
    moment_values,
)
from repro.errors import ConfigurationError
from repro.kernel import GossipEngine, Scenario
from repro.topology import CompleteTopology


@pytest.fixture
def topo():
    return CompleteTopology(300)


@pytest.fixture
def values(topo):
    return np.random.default_rng(11).lognormal(2.0, 0.5, topo.n)


class TestMultiAggregateSpec:
    def test_build_preserves_order(self, values):
        spec = MultiAggregateSpec.build(
            {"mean": MeanAggregate(), "max": MaxAggregate()},
            initial={},
        )
        assert spec.names == ("mean", "max")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiAggregateSpec(
                names=("a", "a"),
                functions=(MeanAggregate(), MeanAggregate()),
                initial={},
            )

    def test_unknown_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiAggregateSpec.build(
                {"mean": MeanAggregate()}, initial={"other": [1.0]}
            )

    def test_scenario_round_trip(self, topo, values):
        spec = MultiAggregateSpec.build(
            {"mean": MeanAggregate(), "m2": MeanAggregate()},
            initial={"m2": moment_values(values, 2)},
        )
        scenario = spec.scenario(topo, values, seed=1, cycles=10)
        assert isinstance(scenario, Scenario)
        engine = GossipEngine(scenario)
        engine.run()
        assert engine.mean("mean") == pytest.approx(values.mean(), rel=1e-9)
        assert engine.mean("m2") == pytest.approx((values ** 2).mean(),
                                                  rel=1e-9)

    def test_node_state_bridge(self, topo, values):
        spec = MultiAggregateSpec.build(
            {"mean": MeanAggregate(), "max": MaxAggregate()}
        )
        engine = GossipEngine(spec.scenario(topo, values, seed=2, cycles=25))
        engine.run()
        state = spec.node_state(engine.matrix, 7)
        assert state.get("mean") == pytest.approx(values.mean(), rel=1e-6)
        assert state.get("max") == values.max()
        assert len(spec.node_states(engine.matrix)) == topo.n


class TestScenarioRunners:
    def test_replicate_scenario_independent_runs(self, topo, values):
        scenario = Scenario(topo, values, cycles=6, seed=3)
        result = replicate_scenario(scenario, runs=3)
        finals = [out.variance_array()[-1] for out in result.outputs]
        assert len(set(finals)) == 3  # independent streams differ
        again = replicate_scenario(scenario, runs=3)
        assert finals == [out.variance_array()[-1] for out in again.outputs]

    def test_replicate_scenario_validates_runs(self, topo, values):
        with pytest.raises(ConfigurationError):
            replicate_scenario(Scenario(topo, values), runs=0)

    def test_sweep_scenario_over_sizes(self, values):
        def factory(n):
            return Scenario(
                CompleteTopology(n),
                np.random.default_rng(n).normal(0.0, 1.0, n),
                cycles=8,
            )

        outcomes = sweep_scenario(factory, [100, 200], runs=2, seed=4)
        assert set(outcomes) == {100, 200}
        for point in outcomes.values():
            assert len(point.outputs) == 2
            for run in point.outputs:
                assert run.variance_array()[-1] < run.variance_array()[0]


class TestServiceBackendParity:
    def test_backends_agree_bitwise(self, topo, values):
        reports = [
            AggregationService(
                topo, values, seed=5, backend=backend
            ).run(cycles=25)
            for backend in ("reference", "vectorized")
        ]
        assert reports[0].as_dict() == reports[1].as_dict()

    def test_service_estimates_with_vectorized_backend(self, topo, values):
        report = AggregationService(
            topo, values, seed=6, backend="vectorized"
        ).run(cycles=30)
        assert report.mean == pytest.approx(values.mean(), rel=1e-6)
        assert report.maximum == values.max()
        assert report.minimum == values.min()
        assert report.network_size == pytest.approx(topo.n, rel=1e-3)
