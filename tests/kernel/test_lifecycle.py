"""Tests for the kernel's churn/epoch lifecycle layer.

Covers the declarative specs (validation, defaults), the engine's
alive-mask growth/shrink and row-recycling mechanics, epoch restart
semantics, and the size-estimation oracle: converged counting
estimates equal 1/⟨x⟩ of the indicator vector.
"""

import numpy as np
import pytest

from repro.core import (
    MeanAggregate,
    SizeEstimationConfig,
    SizeEstimationExperiment,
)
from repro.core.service import AggregationService
from repro.errors import ConfigurationError, SimulationError
from repro.failures import ConstantRateChurn, NoChurn
from repro.failures.partition import PartitionSchedule
from repro.kernel import ChurnSpec, EpochSpec, GossipEngine, Scenario
from repro.topology import CompleteTopology, RingTopology


def scenario_with(n=64, seed=5, **kwargs):
    values = np.random.default_rng(2).normal(10.0, 3.0, n)
    return Scenario(CompleteTopology(n), values, seed=seed, **kwargs)


class TestSpecValidation:
    def test_churn_spec_requires_model(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(model="not a model")

    def test_churn_spec_rejoin_policy(self):
        with pytest.raises(ConfigurationError):
            ChurnSpec(model=NoChurn(), rejoin="respawn")

    def test_epoch_spec_requires_positive_length(self):
        with pytest.raises(ConfigurationError):
            EpochSpec(cycles_per_epoch=0)

    def test_epoch_spec_function_type(self):
        with pytest.raises(ConfigurationError):
            EpochSpec(cycles_per_epoch=10, function="avg")

    def test_scenario_wraps_bare_churn_model(self):
        scenario = scenario_with(churn=ConstantRateChurn(1, 1))
        assert isinstance(scenario.churn, ChurnSpec)
        assert scenario.is_dynamic

    def test_scenario_rejects_partition_with_churn(self):
        with pytest.raises(ConfigurationError):
            scenario_with(
                churn=ConstantRateChurn(1, 1),
                partition=PartitionSchedule.random_split(
                    64, 2, start=0, end=4, seed=1
                ),
            )

    def test_scenario_rejects_crash_plan_with_churn(self):
        from repro.failures import CrashPlan

        plan = CrashPlan()
        plan.add(3, [1, 2])
        with pytest.raises(ConfigurationError):
            scenario_with(churn=ConstantRateChurn(1, 1), crash_plan=plan)

    def test_scenario_rejects_sparse_topology_with_churn(self):
        with pytest.raises(ConfigurationError):
            Scenario(
                RingTopology(64),
                np.zeros(64),
                churn=ConstantRateChurn(1, 1),
            )

    def test_tracing_rejected_under_churn(self):
        from repro.simulator.trace import ExchangeTrace

        with pytest.raises(SimulationError):
            GossipEngine(
                scenario_with(churn=ConstantRateChurn(1, 1)),
                trace=ExchangeTrace(),
            )


class TestChurnMechanics:
    def test_net_growth_extends_matrix(self):
        engine = GossipEngine(
            scenario_with(churn=ConstantRateChurn(4, 1), backend="reference")
        )
        engine.run(20)
        assert engine.alive_count == 64 + 20 * 3
        assert engine.capacity >= engine.alive_count

    def test_recycling_bounds_capacity(self):
        """Steady-state churn (joins == leaves) reuses departed slots
        instead of growing the matrix."""
        engine = GossipEngine(
            scenario_with(churn=ConstantRateChurn(5, 5), backend="reference")
        )
        engine.run(40)
        assert engine.alive_count == 64
        # at most one cycle's joins can outrun the free list
        assert engine.capacity <= 64 + 5

    def test_leaves_never_empty_network(self):
        engine = GossipEngine(
            scenario_with(n=8, churn=ConstantRateChurn(0, 100))
        )
        engine.run(10)
        assert engine.alive_count == 1

    def test_join_values_seed_rows(self):
        spec = ChurnSpec(
            model=ConstantRateChurn(3, 0),
            join_values=lambda count, rng: np.full(count, 42.0),
        )
        # loss=1.0 freezes gossip so only churn touches the matrix
        engine = GossipEngine(
            scenario_with(churn=spec, loss_probability=1.0)
        )
        engine.run(2)
        assert engine.alive_count == 64 + 6
        # the six joiner slots carry the declared join value (slots
        # beyond them are grown-but-unused capacity)
        joined = engine.matrix[engine.alive_mask, 0][64:]
        assert len(joined) == 6
        assert np.all(joined == 42.0)

    def test_rejoin_keep_preserves_departed_state(self):
        """With rejoin="keep" a recycled slot retains the value the
        departed node left behind; with "reset" it is re-seeded."""
        outcomes = {}
        for policy in ("keep", "reset"):
            spec = ChurnSpec(
                model=ConstantRateChurn(2, 2),
                rejoin=policy,
                join_values=lambda count, rng: np.full(count, -1.0),
            )
            engine = GossipEngine(
                scenario_with(churn=spec, loss_probability=1.0, seed=9)
            )
            initial = engine.matrix[:, 0]
            engine.run(5)
            recycled = engine.matrix[:64, 0]
            outcomes[policy] = (initial, recycled)
        initial, kept = outcomes["keep"]
        assert np.array_equal(kept, initial)  # departed values survive
        _, reset = outcomes["reset"]
        assert np.any(reset == -1.0)  # some slots were re-seeded

    def test_bad_join_values_shape(self):
        spec = ChurnSpec(
            model=ConstantRateChurn(3, 0),
            join_values=lambda count, rng: np.zeros(count + 1),
        )
        engine = GossipEngine(scenario_with(churn=spec))
        with pytest.raises(SimulationError):
            engine.run(1)


class TestEpochMechanics:
    def test_joiners_wait_for_next_epoch(self):
        engine = GossipEngine(
            scenario_with(
                churn=ConstantRateChurn(2, 0),
                epochs=EpochSpec(cycles_per_epoch=10),
            )
        )
        engine.run(5)
        assert engine.alive_count == 64 + 10
        assert engine.participant_count == 64  # joiners not yet gossiping
        engine.run(5)  # crosses the epoch boundary
        engine.run(1)
        assert engine.participant_count == engine.alive_count - 2

    def test_default_restart_reseeds_from_attributes(self):
        scenario = scenario_with(epochs=EpochSpec(cycles_per_epoch=4))
        engine = GossipEngine(scenario)
        initial = engine.matrix.copy()
        engine.run(3)
        assert not np.array_equal(engine.matrix, initial)
        engine.run(1)  # cycle 4 starts epoch 1: x_i <- a_i again, then one cycle
        # mean is conserved and the restart happened (variance jumped back)
        assert engine.mean() == pytest.approx(float(initial[:, 0].mean()))

    def test_finalize_only_for_completed_epochs(self):
        views = []
        scenario = scenario_with(
            epochs=EpochSpec(
                cycles_per_epoch=10, finalize=lambda view: view
            )
        )
        result = GossipEngine(scenario).run(25)
        views = result.epoch_results
        assert [view.epoch for view in views] == [0, 1]  # epoch 2 incomplete
        assert views[0].start_cycle == 0
        assert views[0].end_cycle == 9
        assert views[1].start_cycle == 10

    def test_boundary_finalize_not_duplicated(self):
        scenario = scenario_with(
            epochs=EpochSpec(cycles_per_epoch=5, finalize=lambda v: v.epoch)
        )
        engine = GossipEngine(scenario)
        first = engine.run(10)  # finalizes epochs 0 and 1 (boundary)
        second = engine.run(5)  # must not re-finalize epoch 1
        # per-run results concatenate cleanly (like exchange_counts)...
        assert first.epoch_results == [0, 1]
        assert second.epoch_results == [2]
        # ...while the engine keeps the cumulative view
        assert engine.epoch_results == [0, 1, 2]

    def test_variable_instance_count_reseed(self):
        """A reseed may change the number of instances; new columns run
        the epoch spec's AGGREGATE."""

        def reseed(context):
            return np.ones((len(context.participants), 2 + context.epoch))

        scenario = scenario_with(
            epochs=EpochSpec(cycles_per_epoch=3, reseed=reseed)
        )
        engine = GossipEngine(scenario)
        engine.run(3)
        assert engine.matrix.shape[1] == 2
        engine.run(3)
        assert engine.matrix.shape[1] == 3
        assert engine.instance_names == (0, 1, 2)


class TestSizeEstimationOracle:
    def test_estimate_is_inverse_mean_of_indicator(self):
        """The §4 counting oracle: AVG conserves the mean, so a fully
        converged node holds ⟨x⟩ of the indicator vector exactly and
        estimates N as 1/⟨x⟩."""
        n = 128
        indicator = np.zeros(n)
        indicator[17] = 1.0
        scenario = Scenario(
            CompleteTopology(n), indicator, seed=3, backend="reference"
        )
        engine = GossipEngine(scenario)
        engine.run(60)
        converged = engine.alive_column()
        true_mean = indicator.mean()  # ⟨x⟩ = 1/128
        assert np.allclose(converged, true_mean, rtol=1e-9)
        estimates = 1.0 / converged
        assert np.allclose(estimates, 1.0 / true_mean, rtol=1e-9)
        assert 1.0 / true_mean == n

    def test_experiment_estimates_equal_inverse_mean(self):
        """End to end through SizeEstimationExperiment: every node's
        reported estimate converges to 1/⟨x⟩ = N."""
        config = SizeEstimationConfig(
            cycles=50, cycles_per_epoch=50, initial_size=200, seed=6
        )
        experiment = SizeEstimationExperiment(config)
        report = experiment.run()[0]
        assert report.reporting_nodes == 200
        assert report.estimate_mean == pytest.approx(200, rel=1e-6)
        assert report.estimate_min == pytest.approx(200, rel=1e-6)
        assert report.estimate_max == pytest.approx(200, rel=1e-6)


class TestServiceEpochs:
    def test_run_epochs_reports_per_epoch(self):
        n = 256
        values = np.random.default_rng(4).lognormal(3.0, 0.5, n)
        service = AggregationService(
            CompleteTopology(n), values, seed=12, backend="reference"
        )
        reports = service.run_epochs(epochs=3, cycles_per_epoch=30)
        assert len(reports) == 3
        for report in reports:
            assert report.mean == pytest.approx(values.mean(), rel=1e-6)
            assert report.maximum == pytest.approx(values.max())
            assert report.network_size == pytest.approx(n, rel=1e-3)
            assert report.cycles == 30

    def test_run_epochs_backend_equivalent(self):
        n = 128
        values = np.random.default_rng(5).normal(20.0, 5.0, n)
        reports = {}
        for backend in ("reference", "vectorized"):
            service = AggregationService(
                CompleteTopology(n), values, seed=13, backend=backend
            )
            reports[backend] = service.run_epochs(
                epochs=2, cycles_per_epoch=20
            )
        for ref, vec in zip(reports["reference"], reports["vectorized"]):
            assert ref.as_dict() == vec.as_dict()

    def test_run_epochs_validation(self):
        service = AggregationService(
            CompleteTopology(16), np.ones(16), seed=1
        )
        with pytest.raises(ConfigurationError):
            service.run_epochs(epochs=0)
        with pytest.raises(ConfigurationError):
            service.run_epochs(cycles_per_epoch=0)
        with pytest.raises(ConfigurationError):
            service.run_epochs(probe_node=99)
