"""Pair-mode (algorithm AVG) equivalence contract.

When a scenario declares a :class:`PairProtocolSpec`, the engine runs
each cycle as ``N`` elementary midpoint steps from a pre-materialized
GETPAIR sequence. The pair draw is the cycle's only RNG consumption and
happens in the engine, so the two backends replay identical sequences:

* the reference backend steps through the sequence one pair at a time
  (the semantic oracle — structurally the pre-refactor ``AvgAlgorithm``
  loop), and
* the vectorized backend greedily segments the sequence into
  conflict-free batches that preserve each node's step order,

and the resulting trajectories must agree **bitwise** for all four
selectors, on complete and sparse overlays, with and without Theorem
1's parallel ``s`` column. The φ distribution properties of §3.3 (PM
≡ 2, RAND ≈ Poisson(2), SEQ/PMRAND ≈ 1 + Poisson(1)) are asserted on
the kernel-recorded ``phi_counts`` directly.
"""

import numpy as np
import pytest

from repro.avg import (
    GetPairPerfectMatching,
    GetPairPMRand,
    GetPairRand,
    GetPairSeq,
    PairSelector,
    ValueVector,
    run_avg,
)
from repro.avg.theory import RATE_PM, RATE_RAND, RATE_SEQ
from repro.avg.vector import empirical_variance
from repro.errors import ConfigurationError, PairSelectionError
from repro.failures import ConstantRateChurn
from repro.kernel import GossipEngine, PairProtocolSpec, Scenario
from repro.rng import make_rng
from repro.topology import CompleteTopology, RandomRegularTopology, RingTopology

SELECTORS = {
    "pm": GetPairPerfectMatching,
    "rand": GetPairRand,
    "seq": GetPairSeq,
    "pmrand": GetPairPMRand,
}

#: selectors that work on any overlay (PM/PMRAND need global knowledge)
SPARSE_SELECTORS = ("rand", "seq")


def pair_scenario(topology, selector, *, track_s=False, backend="reference",
                  seed=51):
    values = np.random.default_rng(13).normal(5.0, 2.0, topology.n)
    return Scenario(
        topology,
        values,
        pair_protocol=PairProtocolSpec(selector=selector, track_s=track_s),
        seed=seed,
        backend=backend,
    )


def run_both(topology, selector, *, track_s=False, cycles=10, seed=51):
    outputs = []
    for backend in ("reference", "vectorized"):
        engine = GossipEngine(
            pair_scenario(topology, selector, track_s=track_s,
                          backend=backend, seed=seed)
        )
        outputs.append((engine, engine.run(cycles)))
    return outputs


def assert_identical(ref, vec):
    ref_engine, ref_result = ref
    vec_engine, vec_result = vec
    assert np.array_equal(ref_engine.matrix, vec_engine.matrix)
    assert ref_result.exchange_counts == vec_result.exchange_counts
    for name in ref_result.instance_names:
        assert np.array_equal(
            ref_result.variance_array(name), vec_result.variance_array(name)
        )
        assert np.array_equal(
            ref_result.mean_array(name), vec_result.mean_array(name)
        )
    assert len(ref_result.phi_counts) == len(vec_result.phi_counts)
    for ref_phi, vec_phi in zip(ref_result.phi_counts, vec_result.phi_counts):
        assert np.array_equal(ref_phi, vec_phi)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("selector", list(SELECTORS))
    @pytest.mark.parametrize("track_s", [False, True],
                             ids=["values-only", "with-s"])
    def test_complete(self, selector, track_s):
        ref, vec = run_both(CompleteTopology(400), selector, track_s=track_s)
        assert_identical(ref, vec)

    @pytest.mark.parametrize("selector", SPARSE_SELECTORS)
    @pytest.mark.parametrize(
        "topology",
        [RandomRegularTopology(400, 8, seed=23), RingTopology(400)],
        ids=lambda t: type(t).__name__,
    )
    def test_sparse(self, selector, topology):
        ref, vec = run_both(topology, selector, track_s=True)
        assert_identical(ref, vec)

    def test_incremental_runs_stay_equal(self):
        """phi_counts are per-run slices, like exchange_counts."""
        engines = [
            GossipEngine(pair_scenario(CompleteTopology(200), "seq",
                                       backend=backend))
            for backend in ("reference", "vectorized")
        ]
        for cycles in (4, 3):
            results = [engine.run(cycles) for engine in engines]
            assert len(results[0].phi_counts) == cycles
            assert_identical(
                (engines[0], results[0]), (engines[1], results[1])
            )


class TestSequentialOracle:
    """The reference trajectory must match a verbatim replay of the
    pre-kernel ``AvgAlgorithm`` loop — same RNG draws, same elementary
    steps, bitwise."""

    @staticmethod
    def replay(topology, selector_cls, cycles, seed, values):
        selector = selector_cls(topology)
        rng = make_rng(seed)
        state = values.tolist()
        s_state = [v * v for v in state]
        trajectory, s_trajectory = [], []
        for _ in range(cycles):
            for i, j in selector.cycle_pairs(rng).tolist():
                midpoint = (state[i] + state[j]) * 0.5
                state[i] = midpoint
                state[j] = midpoint
                quarter = (s_state[i] + s_state[j]) * 0.25
                s_state[i] = quarter
                s_state[j] = quarter
            trajectory.append(empirical_variance(np.asarray(state)))
            s_trajectory.append(float(np.mean(s_state)))
        return np.asarray(state), trajectory, s_trajectory

    @pytest.mark.parametrize("selector", list(SELECTORS))
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_matches_old_loop(self, selector, backend):
        topology = CompleteTopology(300)
        values = np.random.default_rng(29).normal(0.0, 1.0, 300)
        scenario = Scenario(
            topology,
            values,
            pair_protocol=PairProtocolSpec(selector=selector, track_s=True),
            seed=91,
            backend=backend,
        )
        engine = GossipEngine(scenario)
        result = engine.run(6)
        state, trajectory, s_trajectory = self.replay(
            topology, SELECTORS[selector], 6, 91, values
        )
        assert np.array_equal(engine.alive_column("avg"), state)
        assert result.variances["avg"][1:] == trajectory
        assert result.means["s"][1:] == s_trajectory


class TestPhiDistributions:
    """§3.3's φ characterizations, read off kernel phi_counts."""

    def phi(self, selector, n=5000, seed=61):
        engine = GossipEngine(
            pair_scenario(CompleteTopology(n), selector, seed=seed,
                          backend="vectorized")
        )
        return np.concatenate(engine.run(4).phi_counts)

    def test_pm_is_exactly_two(self):
        assert np.all(self.phi("pm") == 2)

    def test_rand_is_poisson_two(self):
        phi = self.phi("rand")
        assert phi.mean() == pytest.approx(2.0, abs=0.05)
        assert phi.var() == pytest.approx(2.0, rel=0.1)  # Var(Poisson(2))

    @pytest.mark.parametrize("selector", ["seq", "pmrand"])
    def test_seq_and_pmrand_are_one_plus_poisson_one(self, selector):
        phi = self.phi(selector)
        assert np.all(phi >= 1)
        assert phi.mean() == pytest.approx(2.0, abs=0.05)
        assert phi.var() == pytest.approx(1.0, rel=0.1)  # Var(1+Poisson(1))

    def test_track_phi_off_records_nothing(self):
        scenario = Scenario(
            CompleteTopology(100),
            np.random.default_rng(3).normal(0, 1, 100),
            pair_protocol=PairProtocolSpec(selector="seq", track_phi=False),
            seed=5,
        )
        assert GossipEngine(scenario).run(3).phi_counts == []


class TestConvergenceRates:
    """The empirical per-cycle rates land on the §3.3 theory values for
    every selector, on the vectorized backend at a size where the
    concentration is tight."""

    @pytest.mark.parametrize("selector,theory", [
        ("pm", RATE_PM),
        ("rand", RATE_RAND),
        ("seq", RATE_SEQ),
        ("pmrand", RATE_SEQ),
    ])
    def test_rate(self, selector, theory):
        topology = CompleteTopology(4000)
        vector = ValueVector.gaussian(4000, seed=17)
        result = run_avg(
            vector, SELECTORS[selector](topology), 10, seed=19,
            backend="vectorized",
        )
        assert result.geometric_mean_reduction() == pytest.approx(
            theory, rel=0.06
        )


class TestScenarioValidation:
    def values(self, n=100):
        return np.random.default_rng(7).normal(0, 1, n)

    def test_unknown_selector_rejected(self):
        with pytest.raises(ConfigurationError):
            PairProtocolSpec(selector="bogus")

    def test_pm_odd_n_rejected(self):
        with pytest.raises(PairSelectionError):
            Scenario(CompleteTopology(101), self.values(101),
                     pair_protocol=PairProtocolSpec(selector="pm"))

    def test_pmrand_sparse_rejected(self):
        with pytest.raises(PairSelectionError):
            Scenario(RingTopology(100), self.values(),
                     pair_protocol=PairProtocolSpec(selector="pmrand"))

    @pytest.mark.parametrize("kwargs", [
        dict(loss_probability=0.1),
        dict(loss_schedule=lambda c: 0.1),
        dict(churn=ConstantRateChurn(joins_per_cycle=1, leaves_per_cycle=1)),
    ], ids=["loss", "loss-schedule", "churn"])
    def test_failure_machinery_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Scenario(CompleteTopology(100), self.values(),
                     pair_protocol=PairProtocolSpec(selector="seq"), **kwargs)

    def test_custom_aggregates_rejected(self):
        from repro.core import MaxAggregate

        with pytest.raises(ConfigurationError):
            Scenario(CompleteTopology(100), self.values(),
                     aggregates={"max": MaxAggregate()},
                     pair_protocol=PairProtocolSpec(selector="seq"))

    def test_pair_mode_owns_instance_layout(self):
        scenario = pair_scenario(CompleteTopology(100), "seq", track_s=True)
        assert scenario.instance_names == ("avg", "s")
        matrix = scenario.initial_matrix()
        assert np.array_equal(matrix[:, 1], scenario.values ** 2)

    def test_replace_reseeds_cleanly(self):
        """The sweep/replicate drivers re-seed via Scenario.replace();
        the pair-mode normalization must be idempotent under it."""
        scenario = pair_scenario(CompleteTopology(100), "seq", track_s=True)
        replaced = scenario.replace(seed=99)
        assert replaced.instance_names == ("avg", "s")
        result = GossipEngine(replaced).run(2)
        assert len(result.phi_counts) == 2


class TestChunkTunable:
    """The greedy-segmentation window is a pure performance knob: any
    positive value must reproduce the reference trajectory bitwise."""

    def run_vectorized(self, chunk, n=300, cycles=6):
        values = np.random.default_rng(17).normal(0.0, 1.0, n)
        scenario = Scenario(
            CompleteTopology(n),
            values,
            pair_protocol=PairProtocolSpec(selector="rand", chunk=chunk),
            seed=71,
            backend="vectorized",
        )
        engine = GossipEngine(scenario)
        engine.run(cycles)
        return engine.matrix

    def test_chunk_never_changes_results(self):
        reference = self.run_vectorized(None)
        for chunk in (1, 7, 64, 100_000):
            assert np.array_equal(self.run_vectorized(chunk), reference)

    @pytest.mark.parametrize("chunk", [0, -4, 1.5, "big", False])
    def test_invalid_chunk_rejected(self, chunk):
        with pytest.raises(ConfigurationError):
            PairProtocolSpec(selector="seq", chunk=chunk)

    def test_env_var_overrides_default(self, monkeypatch):
        from repro.kernel import PAIR_CHUNK, VectorizedBackend, resolve_chunk

        monkeypatch.setenv("REPRO_PAIR_CHUNK", "512")
        assert resolve_chunk() == 512
        assert VectorizedBackend()._chunk == 512
        monkeypatch.delenv("REPRO_PAIR_CHUNK")
        assert resolve_chunk() == PAIR_CHUNK

    def test_explicit_chunk_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAIR_CHUNK", "512")
        from repro.kernel import resolve_chunk

        assert resolve_chunk(64) == 64

    @pytest.mark.parametrize("env", ["0", "-3", "many"])
    def test_invalid_env_rejected(self, monkeypatch, env):
        from repro.kernel import resolve_chunk

        monkeypatch.setenv("REPRO_PAIR_CHUNK", env)
        with pytest.raises(ConfigurationError):
            resolve_chunk()


class TestCustomSelectors:
    """User-defined PairSelector subclasses (the pre-kernel extension
    point: subclass, name, override cycle_pairs) still run through
    AvgAlgorithm — via a custom PairProtocolSpec generator — with the
    backends bitwise-equal."""

    class RoundRobin(PairSelector):
        name = "round_robin"

        def cycle_pairs(self, rng):
            n = self.n
            shift = 1 + int(rng.integers(0, n - 1))
            initiators = np.arange(n, dtype=np.int64)
            return np.column_stack((initiators, (initiators + shift) % n))

    def test_constructs_without_kernel_name(self):
        selector = self.RoundRobin(CompleteTopology(64))
        assert selector.name == "round_robin"

    def test_runs_on_both_backends_bitwise(self):
        results = {}
        for backend in ("reference", "vectorized"):
            vector = ValueVector.gaussian(256, seed=5)
            selector = self.RoundRobin(CompleteTopology(256))
            run = run_avg(vector, selector, 6, seed=8, track_s=True,
                          backend=backend)
            results[backend] = (vector.snapshot(), run)
        ref_values, ref_run = results["reference"]
        vec_values, vec_run = results["vectorized"]
        assert np.array_equal(ref_values, vec_values)
        assert [c.variance_after for c in ref_run.cycles] == [
            c.variance_after for c in vec_run.cycles
        ]
        assert all(
            np.array_equal(a.phi, b.phi)
            for a, b in zip(ref_run.cycles, vec_run.cycles)
        )

    def test_custom_generator_spec_validates_label(self):
        with pytest.raises(ConfigurationError):
            PairProtocolSpec(selector="", generator=lambda t, r: None)
