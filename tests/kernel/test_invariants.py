"""Invariant-monitor suite: findings, reports, strict mode, drift
attribution, and the ``REPRO_STRICT_INVARIANTS`` CI hook.

The monitors certify the §3 analysis while the engine runs: mass
conservation (with per-fault-event attribution through the engine's
cycle ledger), variance monotonicity in the fault-free static setting,
and lifecycle bookkeeping consistency under churn. The suite drives
them through clean runs, fault runs, deliberate violations (via a
monitor stub) and the environment hook that arms them on every engine.
"""

import numpy as np
import pytest

from repro.errors import InvariantViolation
from repro.failures import ConstantRateChurn
from repro.kernel import (
    AdversarySpec,
    ChurnSpec,
    GossipEngine,
    InvariantFinding,
    InvariantMonitor,
    InvariantReport,
    MassConservationMonitor,
    MessageFaultSpec,
    Scenario,
    StructureMonitor,
    VarianceMonotonicityMonitor,
    standard_monitors,
)
from repro.topology import CompleteTopology

N = 300
SEED = 41


def make_scenario(n=N, **kwargs):
    values = np.random.default_rng(SEED).normal(10.0, 4.0, n)
    return Scenario(
        CompleteTopology(n), values, seed=SEED, backend="reference", **kwargs
    )


class AlwaysViolates(InvariantMonitor):
    """Stub driving the strict machinery without a real engine bug."""

    name = "stub"

    def observe(self, engine, cycle, ledger, rebase):
        return [self._finding(cycle, "violation", "deliberate failure",
                              value=1.5)]


class TestFindingsAndReport:
    def test_finding_severity_predicate(self):
        violation = InvariantFinding("m", 3, "violation", "boom")
        info = InvariantFinding("m", 3, "info", "fine")
        assert violation.is_violation and not info.is_violation

    def test_report_filters_violations(self):
        violation = InvariantFinding("m", 1, "violation", "boom", value=2.0)
        report = InvariantReport(findings=(
            InvariantFinding("m", 0, "info", "fine"), violation,
        ))
        assert report.violations == (violation,)
        assert not report.ok
        assert InvariantReport().ok

    def test_engine_report_collects_summaries(self):
        engine = GossipEngine(make_scenario())
        engine.arm_standard_monitors()
        try:
            engine.run(4)
            report = engine.invariant_report()
        finally:
            engine.close()
        assert report.ok
        assert set(report.summaries) == {"mass", "variance", "structure"}
        assert report.summaries["mass"]["cycles_checked"] == 3
        assert report.summaries["mass"]["fault_drift"] == 0.0


class TestStrictMode:
    def test_strict_violation_raises_at_cycle(self):
        engine = GossipEngine(make_scenario())
        engine.register_monitor(AlwaysViolates(), strict=True)
        try:
            with pytest.raises(InvariantViolation) as excinfo:
                engine.run(5)
            assert excinfo.value.findings
            assert excinfo.value.findings[0].monitor == "stub"
            assert excinfo.value.findings[0].cycle == 0
        finally:
            engine.close()

    def test_non_strict_violation_accumulates(self):
        engine = GossipEngine(make_scenario())
        engine.register_monitor(AlwaysViolates(), strict=False)
        try:
            engine.run(3)
            report = engine.invariant_report()
        finally:
            engine.close()
        assert len(report.violations) == 3

    def test_env_hook_arms_standard_monitors(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_INVARIANTS", "1")
        engine = GossipEngine(make_scenario())
        try:
            engine.run(3)
            report = engine.invariant_report()
        finally:
            engine.close()
        assert set(report.summaries) == {"mass", "variance", "structure"}
        assert report.ok

    def test_env_hook_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STRICT_INVARIANTS", raising=False)
        engine = GossipEngine(make_scenario())
        try:
            engine.run(2)
            report = engine.invariant_report()
        finally:
            engine.close()
        assert report.summaries == {}


class TestMassConservation:
    def test_clean_run_certifies_zero_drift(self):
        engine = GossipEngine(make_scenario())
        monitor = engine.register_monitor(
            MassConservationMonitor(), strict=True
        )
        try:
            engine.run(10)
        finally:
            engine.close()
        assert monitor.fault_drift == 0.0
        assert monitor.attributed == {}
        assert monitor.max_residual < 1e-7

    def test_partial_exchanges_fully_attributed(self):
        """Every unit of fault drift shows up in the ledger: the
        attributed partial drift equals the estimate's offset from the
        true mean, and the unattributed residual stays at rounding
        level."""
        values = np.random.default_rng(SEED).normal(10.0, 4.0, N)
        engine = GossipEngine(make_scenario(
            message_faults=MessageFaultSpec(reply_loss=0.3)
        ))
        monitor = engine.register_monitor(MassConservationMonitor())
        try:
            engine.run(20)
            estimate = engine.mean()
            report = engine.invariant_report()
        finally:
            engine.close()
        assert report.ok
        assert "partial" in monitor.attributed
        assert abs(estimate - values.mean()) == pytest.approx(
            abs(monitor.fault_drift) / N, rel=1e-9
        )
        assert monitor.max_residual < 1e-7

    def test_adversary_injection_is_lifecycle_not_fault(self):
        engine = GossipEngine(make_scenario(
            adversary=AdversarySpec(kind="inject", fraction=0.1, value=99.0)
        ))
        monitor = engine.register_monitor(
            MassConservationMonitor(), strict=True
        )
        try:
            engine.run(6)
        finally:
            engine.close()
        assert "inject" in monitor.attributed
        assert monitor.fault_drift == 0.0  # message faults never fired

    def test_churn_run_stays_attributed(self):
        engine = GossipEngine(make_scenario(
            churn=ChurnSpec(model=ConstantRateChurn(3, 2))
        ))
        monitor = engine.register_monitor(
            MassConservationMonitor(), strict=True
        )
        try:
            engine.run(8)
        finally:
            engine.close()
        assert {"join", "leave"} <= set(monitor.attributed)
        assert monitor.fault_drift == 0.0


class TestVarianceMonotonicity:
    def test_applicable_and_clean_on_static_fault_free(self):
        engine = GossipEngine(make_scenario())
        monitor = engine.register_monitor(
            VarianceMonotonicityMonitor(), strict=True
        )
        try:
            engine.run(10)
        finally:
            engine.close()
        assert monitor.summary()["applicable"] is True
        assert monitor.cycles_checked == 10

    def test_self_disables_under_message_faults(self):
        engine = GossipEngine(make_scenario(
            message_faults=MessageFaultSpec(reply_loss=0.4)
        ))
        monitor = engine.register_monitor(
            VarianceMonotonicityMonitor(), strict=True
        )
        try:
            engine.run(6)  # drift would break monotonicity if armed
        finally:
            engine.close()
        assert monitor.summary()["applicable"] is False
        assert monitor.cycles_checked == 0


class TestStructure:
    def test_clean_under_churn(self):
        engine = GossipEngine(make_scenario(
            churn=ChurnSpec(model=ConstantRateChurn(4, 3))
        ))
        monitor = engine.register_monitor(StructureMonitor(), strict=True)
        try:
            engine.run(10)
        finally:
            engine.close()
        assert monitor.cycles_checked == 10

    def test_standard_set_is_fresh_instances(self):
        first, second = standard_monitors(), standard_monitors()
        assert {m.name for m in first} == {"mass", "variance", "structure"}
        assert all(a is not b for a, b in zip(first, second))
