"""Tests for kernel.scenario — the declarative experiment config."""

import numpy as np
import pytest

from repro.core import MaxAggregate, MeanAggregate, moment_values
from repro.errors import ConfigurationError
from repro.failures.message_loss import burst_loss
from repro.kernel import AUTO_VECTORIZE_THRESHOLD, Scenario
from repro.topology import CompleteTopology


@pytest.fixture
def topo():
    return CompleteTopology(50)


@pytest.fixture
def values(topo):
    return np.random.default_rng(0).normal(0.0, 1.0, topo.n)


class TestValidation:
    def test_value_count_checked(self, topo):
        with pytest.raises(ConfigurationError):
            Scenario(topo, [1.0, 2.0])

    def test_values_must_be_1d(self, topo):
        with pytest.raises(ConfigurationError):
            Scenario(topo, np.zeros((topo.n, 2)))

    def test_loss_range_checked(self, topo, values):
        with pytest.raises(ConfigurationError):
            Scenario(topo, values, loss_probability=1.5)

    def test_empty_aggregates_rejected(self, topo, values):
        with pytest.raises(ConfigurationError):
            Scenario(topo, values, aggregates={})

    def test_non_aggregate_function_rejected(self, topo, values):
        with pytest.raises(ConfigurationError):
            Scenario(topo, values, aggregates={"mean": lambda x, y: x})

    def test_unknown_initial_key_rejected(self, topo, values):
        with pytest.raises(ConfigurationError):
            Scenario(topo, values, initial={"nope": values})

    def test_unknown_backend_rejected(self, topo, values):
        with pytest.raises(ConfigurationError):
            Scenario(topo, values, backend="gpu")

    def test_negative_cycles_rejected(self, topo, values):
        with pytest.raises(ConfigurationError):
            Scenario(topo, values, cycles=-1)


class TestDerivedViews:
    def test_default_single_mean_instance(self, topo, values):
        scenario = Scenario(topo, values)
        assert scenario.instance_names == ("mean",)
        matrix = scenario.initial_matrix()
        assert matrix.shape == (topo.n, 1)
        assert np.array_equal(matrix[:, 0], values)

    def test_initial_matrix_column_order(self, topo, values):
        scenario = Scenario(
            topo,
            values,
            aggregates={"mean": MeanAggregate(), "m2": MeanAggregate(),
                        "max": MaxAggregate()},
            initial={"m2": moment_values(values, 2)},
        )
        matrix = scenario.initial_matrix()
        assert matrix.shape == (topo.n, 3)
        assert np.array_equal(matrix[:, 0], values)
        assert np.array_equal(matrix[:, 1], values ** 2)
        assert np.array_equal(matrix[:, 2], values)

    def test_initial_matrix_is_a_copy(self, topo, values):
        scenario = Scenario(topo, values)
        scenario.initial_matrix()[:, 0] = 0.0
        assert np.array_equal(scenario.initial_matrix()[:, 0], values)

    def test_wrong_initial_length_rejected(self, topo, values):
        scenario = Scenario(
            topo, values,
            aggregates={"mean": MeanAggregate()},
            initial={"mean": [1.0, 2.0]},
        )
        with pytest.raises(ConfigurationError):
            scenario.initial_matrix()

    def test_loss_at_constant(self, topo, values):
        scenario = Scenario(topo, values, loss_probability=0.3)
        assert scenario.loss_at(0) == 0.3
        assert scenario.loss_at(99) == 0.3

    def test_loss_at_schedule_overrides(self, topo, values):
        scenario = Scenario(
            topo, values, loss_probability=0.3,
            loss_schedule=burst_loss(0.0, 0.8, 5, 10),
        )
        assert scenario.loss_at(0) == 0.0
        assert scenario.loss_at(5) == 0.8
        assert scenario.loss_at(10) == 0.0


class TestBackendResolution:
    def test_explicit_backend_kept(self, topo, values):
        assert Scenario(topo, values, backend="reference").resolve_backend() \
            == "reference"
        assert Scenario(topo, values, backend="vectorized").resolve_backend() \
            == "vectorized"

    def test_auto_small_is_reference(self, topo, values):
        assert Scenario(topo, values, backend="auto").resolve_backend() \
            == "reference"

    def test_auto_large_is_vectorized(self):
        n = AUTO_VECTORIZE_THRESHOLD
        scenario = Scenario(CompleteTopology(n), np.zeros(n), backend="auto")
        assert scenario.resolve_backend() == "vectorized"


class TestReplace:
    def test_replace_reseeds(self, topo, values):
        scenario = Scenario(topo, values, seed=1)
        other = scenario.replace(seed=2)
        assert other.seed == 2
        assert scenario.seed == 1
        assert other.topology is scenario.topology
