"""Message-fault suite: spec validation, fault semantics, retry
recovery, backend equivalence.

Every fault effect is engine-side (loss coins come from the engine
RNG, partial exchanges / duplicate deliveries / retransmission repairs
are engine matrix writes), so the bitwise backend-equivalence contract
must hold under any :class:`MessageFaultSpec` × :class:`RetrySpec` ×
partner-provider combination — that sweep is the core of this module.
Alongside it: the asymmetric loss semantics (request loss cancels
cleanly, reply loss leaks mass), exact delta repair, budget exhaustion
and both fallbacks, checkpoint round trips with pending exchanges, and
the deprecation shells over ``repro.failures.message_loss``. The
closed-form drift distribution lives in the ``slow_statistical``
acceptance test at the bottom.
"""

import warnings

import numpy as np
import pytest

from repro.analysis import retry_for_policy
from repro.errors import ConfigurationError
from repro.kernel import (
    GossipEngine,
    MassConservationMonitor,
    MessageFaultSpec,
    PairProtocolSpec,
    RetrySpec,
    Scenario,
    burst_loss,
    constant_loss,
)
from repro.rng import spawn_streams
from repro.topology import CompleteTopology

N = 400
CYCLES = 8
SEED = 97

#: the fault shapes the bitwise sweep replays (each exercises a
#: distinct engine code path: cancelled exchanges, partial exchanges,
#: stale duplicate delivery, and all three retry policies over
#: combined loss)
FAULT_COMBOS = {
    "request": dict(message_faults=MessageFaultSpec(request_loss=0.25)),
    "reply": dict(message_faults=MessageFaultSpec(reply_loss=0.25)),
    "duplication": dict(
        message_faults=MessageFaultSpec(reply_loss=0.1, duplication=0.2)
    ),
    "retry_retransmit": dict(
        message_faults=MessageFaultSpec(request_loss=0.15, reply_loss=0.15),
        retry=RetrySpec(),
    ),
    "retry_redraw": dict(
        message_faults=MessageFaultSpec(request_loss=0.15, reply_loss=0.15),
        retry=RetrySpec(mode="redraw"),
    ),
    "retry_push_only": dict(
        message_faults=MessageFaultSpec(reply_loss=0.3),
        retry=RetrySpec(budget=1, fallback="push_only"),
    ),
}


def make_scenario(backend="reference", n=N, seed=SEED, **kwargs):
    values = np.random.default_rng(SEED).normal(10.0, 4.0, n)
    return Scenario(
        CompleteTopology(n), values, seed=seed, backend=backend, **kwargs
    )


def run_snapshot(scenario, cycles=CYCLES):
    """Run to completion and return the bitwise-comparable snapshot."""
    engine = GossipEngine(scenario)
    try:
        result = engine.run(cycles)
        return (
            engine.matrix,
            result.exchange_counts,
            engine.reported_column(),
            dict(engine.message_fault_stats),
        )
    finally:
        engine.close()


def run_with_monitor(cycles=CYCLES, n=N, seed=SEED, **kwargs):
    """Run under a mass monitor; return (engine stats, monitor, mean)."""
    engine = GossipEngine(make_scenario(n=n, seed=seed, **kwargs))
    monitor = engine.register_monitor(MassConservationMonitor())
    try:
        engine.run(cycles)
        stats = dict(engine.message_fault_stats)
        mean = engine.mean()
        report = engine.invariant_report()
    finally:
        engine.close()
    return stats, monitor, mean, report


class TestSpecValidation:
    @pytest.mark.parametrize(
        "field", ["request_loss", "reply_loss", "duplication"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probability_out_of_range(self, field, value):
        with pytest.raises(ConfigurationError, match="must be in"):
            MessageFaultSpec(**{field: value})

    def test_non_callable_schedule_rejected(self):
        with pytest.raises(ConfigurationError, match="callable"):
            MessageFaultSpec(request_schedule=0.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            MessageFaultSpec(reply_loss=0.1, start=5, end=5)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError, match="start"):
            MessageFaultSpec(reply_loss=0.1, start=-1)

    def test_schedule_wins_over_rate(self):
        spec = MessageFaultSpec(
            reply_loss=0.5, reply_schedule=constant_loss(0.2)
        )
        assert spec.reply_loss_at(3) == 0.2

    def test_window_gates_every_rate(self):
        spec = MessageFaultSpec(
            request_loss=0.3, reply_loss=0.2, duplication=0.1,
            start=2, end=4,
        )
        for cycle, active in ((0, False), (2, True), (3, True), (4, False)):
            assert spec.active_at(cycle) is active
            expected = 0.3 if active else 0.0
            assert spec.request_loss_at(cycle) == expected

    def test_bad_schedule_value_rejected_at_use(self):
        spec = MessageFaultSpec(reply_schedule=lambda cycle: 1.5)
        with pytest.raises(ConfigurationError, match="schedule returned"):
            spec.reply_loss_at(0)

    def test_retry_timeout_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            RetrySpec(timeout=0)

    def test_retry_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="budget"):
            RetrySpec(budget=-1)

    def test_retry_backoff_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="backoff"):
            RetrySpec(backoff=0.5)

    def test_retry_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown retry mode"):
            RetrySpec(mode="carrier-pigeon")

    def test_retry_unknown_fallback_rejected(self):
        with pytest.raises(ConfigurationError, match="fallback"):
            RetrySpec(fallback="panic")

    def test_retry_delay_backs_off_exponentially(self):
        spec = RetrySpec(timeout=2, backoff=2.0)
        assert [spec.delay(a) for a in range(3)] == [2, 4, 8]

    def test_scenario_rejects_non_spec_faults(self):
        with pytest.raises(ConfigurationError, match="MessageFaultSpec"):
            make_scenario(message_faults={"reply_loss": 0.1})

    def test_scenario_rejects_retry_without_faults(self):
        with pytest.raises(ConfigurationError, match="retry needs"):
            make_scenario(retry=RetrySpec())

    def test_pair_mode_rejects_message_faults(self):
        with pytest.raises(ConfigurationError):
            make_scenario(
                message_faults=MessageFaultSpec(reply_loss=0.1),
                pair_protocol=PairProtocolSpec(selector="pm"),
            )

    def test_policy_helper_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="policy"):
            retry_for_policy("resend-harder")


class TestBitwiseEquivalence:
    """The three backends agree bitwise under every fault shape."""

    @pytest.mark.parametrize("membership", [None, "newscast"])
    @pytest.mark.parametrize("combo", sorted(FAULT_COMBOS))
    def test_reference_vs_vectorized(self, combo, membership):
        kwargs = dict(FAULT_COMBOS[combo])
        if membership is not None:
            kwargs["membership"] = membership
        reference = run_snapshot(make_scenario("reference", **kwargs))
        vectorized = run_snapshot(make_scenario("vectorized", **kwargs))
        assert np.array_equal(reference[0], vectorized[0])
        assert reference[1] == vectorized[1]
        assert np.array_equal(reference[2], vectorized[2])
        assert reference[3] == vectorized[3]

    @pytest.mark.parametrize("combo", ["reply", "retry_retransmit"])
    def test_sharded_matches_reference(self, combo):
        kwargs = FAULT_COMBOS[combo]
        reference = run_snapshot(make_scenario("reference", **kwargs))
        sharded = run_snapshot(make_scenario("sharded:2", **kwargs))
        assert np.array_equal(reference[0], sharded[0])
        assert reference[1] == sharded[1]
        assert reference[3] == sharded[3]


class TestFaultSemantics:
    def test_all_zero_spec_is_bitwise_inert(self):
        plain = run_snapshot(make_scenario())
        gated = run_snapshot(make_scenario(message_faults=MessageFaultSpec()))
        assert np.array_equal(plain[0], gated[0])
        assert plain[1] == gated[1]

    def test_window_outside_run_is_bitwise_inert(self):
        plain = run_snapshot(make_scenario())
        gated = run_snapshot(make_scenario(
            message_faults=MessageFaultSpec(reply_loss=0.9, start=CYCLES + 5)
        ))
        assert np.array_equal(plain[0], gated[0])
        assert plain[1] == gated[1]

    def test_request_loss_cancels_cleanly(self):
        """A lost request cancels both endpoints: fewer exchanges, no
        partials, and exactly zero attributed drift."""
        stats, monitor, _, report = run_with_monitor(
            message_faults=MessageFaultSpec(request_loss=0.5)
        )
        assert stats["partials"] == 0
        assert monitor.fault_drift == 0.0
        assert report.ok

    def test_reply_loss_leaks_attributed_mass(self):
        """The partial exchange moves mass, the monitor attributes all
        of it: per-node drift equals the estimate error exactly."""
        values_mean = float(
            np.random.default_rng(SEED).normal(10.0, 4.0, N).mean()
        )
        stats, monitor, mean, report = run_with_monitor(
            cycles=20, message_faults=MessageFaultSpec(reply_loss=0.2)
        )
        assert stats["partials"] > 0
        assert monitor.fault_drift != 0.0
        assert report.ok  # drift is attributed, not a violation
        assert abs(mean - values_mean) == pytest.approx(
            abs(monitor.fault_drift) / N, rel=1e-9
        )

    def test_duplication_applies_stale_payload(self):
        stats, monitor, _, report = run_with_monitor(
            message_faults=MessageFaultSpec(duplication=0.5)
        )
        assert stats["duplicates"] > 0
        assert "duplicate" in monitor.attributed
        assert report.ok

    def test_fault_free_run_attributes_nothing(self):
        _, monitor, _, report = run_with_monitor(cycles=12)
        assert monitor.fault_drift == 0.0
        assert monitor.attributed == {}
        assert report.ok


class TestRetry:
    def test_retransmit_repairs_burst_exactly(self):
        """Every reply lost at cycle 0, none afterwards: retransmission
        repairs each partial with the cached delta, so the attributed
        drift collapses to rounding noise and the estimate converges to
        the true mean."""
        values_mean = float(
            np.random.default_rng(SEED).normal(10.0, 4.0, N).mean()
        )
        spec = MessageFaultSpec(
            reply_schedule=lambda cycle: 1.0 if cycle == 0 else 0.0
        )
        stats, monitor, mean, report = run_with_monitor(
            cycles=25, message_faults=spec, retry=RetrySpec()
        )
        assert stats["partials"] > 0
        assert stats["repairs"] > 0
        assert report.ok
        assert abs(monitor.fault_drift) / N < 1e-12
        assert mean == pytest.approx(values_mean, abs=1e-9)

    def test_retransmit_beats_no_retry_on_drift(self):
        """Averaged over seeds (a single run's |drift| is a noisy
        half-normal draw); the >= 5x acceptance version runs at scale
        under the ``slow_statistical`` marker below."""
        spec = MessageFaultSpec(reply_loss=0.15)
        drifts = {}
        for policy in ("none", "retransmit"):
            samples = []
            for run_seed in spawn_streams(13, 6):
                _, monitor, _, _ = run_with_monitor(
                    cycles=30, n=2000, seed=run_seed, message_faults=spec,
                    retry=retry_for_policy(policy),
                )
                samples.append(abs(monitor.fault_drift) / 2000)
            drifts[policy] = float(np.mean(samples))
        assert drifts["retransmit"] < drifts["none"]

    def test_pending_nodes_freeze_until_resolution(self):
        """Mid-run, some initiators are pending; by the end of a long
        fault window every episode resolved or fell back."""
        spec = MessageFaultSpec(reply_loss=0.4, end=10)
        engine = GossipEngine(make_scenario(
            message_faults=spec, retry=RetrySpec()
        ))
        try:
            engine.run(3)
            assert engine.pending_retry_count > 0
            engine.run(25)
            assert engine.pending_retry_count == 0
        finally:
            engine.close()

    def test_budget_exhaustion_accept_fallback(self):
        """Replies never arrive: the budget runs out and ``accept``
        unblocks every initiator (drift stays, protocol resumes)."""
        stats, monitor, _, _ = run_with_monitor(
            cycles=30,
            message_faults=MessageFaultSpec(reply_loss=1.0),
            retry=RetrySpec(budget=1),
        )
        assert stats["giveups"] > 0
        assert monitor.fault_drift != 0.0

    def test_push_only_fallback_stops_initiating(self):
        """``push_only`` survivors respond but never initiate again, so
        exchange counts decay as the fallback population grows."""
        engine = GossipEngine(make_scenario(
            message_faults=MessageFaultSpec(reply_loss=1.0),
            retry=RetrySpec(budget=1, fallback="push_only"),
        ))
        try:
            result = engine.run(30)
            stats = dict(engine.message_fault_stats)
        finally:
            engine.close()
        assert stats["giveups"] > 0
        assert result.exchange_counts[-1] < result.exchange_counts[0]

    def test_redraw_resolves_through_provider(self):
        stats, _, _, report = run_with_monitor(
            cycles=20,
            message_faults=MessageFaultSpec(request_loss=0.3),
            retry=RetrySpec(mode="redraw"),
        )
        assert stats["retries"] > 0
        assert report.ok

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_checkpoint_round_trip_with_pending_state(self, backend,
                                                      tmp_path):
        """Checkpointing mid-episode (pending initiators, cached
        replies, backoff clocks) resumes bitwise-identically."""
        def scenario():
            return make_scenario(
                backend,
                message_faults=MessageFaultSpec(
                    request_loss=0.15, reply_loss=0.25
                ),
                retry=RetrySpec(budget=4),
            )

        full = GossipEngine(scenario())
        try:
            full.run(16)
            expected = (full.matrix, dict(full.message_fault_stats))
        finally:
            full.close()

        part = GossipEngine(scenario())
        part.run(7)
        assert part.pending_retry_count > 0  # mid-episode state exists
        manifest = part.checkpoint(tmp_path)
        part.close()

        resumed = GossipEngine.restore(scenario(), manifest)
        try:
            assert resumed.cycle == 7
            assert resumed.pending_retry_count > 0
            resumed.run(9)
            assert np.array_equal(resumed.matrix, expected[0])
            assert dict(resumed.message_fault_stats) == expected[1]
        finally:
            resumed.close()


class TestDeprecationShells:
    def test_failures_module_warns_once_and_works(self):
        import repro.failures.message_loss as shell

        shell._warned.discard("constant_loss")
        with pytest.warns(DeprecationWarning, match="deprecated"):
            schedule = shell.constant_loss(0.3)
        assert schedule(7) == 0.3
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            shell.constant_loss(0.1)  # second use: no warning

    def test_burst_loss_shell_delegates(self):
        import repro.failures.message_loss as shell

        shell._warned.discard("burst_loss")
        with pytest.warns(DeprecationWarning, match="kernel.messages"):
            schedule = shell.burst_loss(0.05, 0.5, 2, 4)
        assert schedule(0) == 0.05
        assert schedule(3) == 0.5

    def test_kernel_is_the_canonical_home(self):
        from repro.kernel import burst_loss as kernel_burst
        from repro.kernel.messages import burst_loss as module_burst

        assert kernel_burst is module_burst
        assert burst_loss is module_burst


@pytest.mark.slow_statistical
class TestDriftDistribution:
    """Closed-form acceptance for the reply-loss drift.

    With every reply lost in cycle 0 only, each of the ``m`` cycle-0
    exchanges contributes ``(x_i - x_j) / 2`` of drift where the pair
    values are exchangeable draws from the initial distribution, so the
    total drift ``D`` has mean 0 and ``std(D) ≈ sqrt(m · σ₀² / 2)``.
    """

    def test_cycle_zero_burst_matches_closed_form(self):
        n, sigma = 2000, 4.0
        spec = MessageFaultSpec(
            reply_schedule=lambda cycle: 1.0 if cycle == 0 else 0.0
        )
        drifts, exchange_counts = [], []
        for run_seed in spawn_streams(7, 40):
            engine = GossipEngine(make_scenario(
                n=n, seed=run_seed, message_faults=spec
            ))
            monitor = engine.register_monitor(MassConservationMonitor())
            try:
                result = engine.run(2)
            finally:
                engine.close()
            drifts.append(monitor.fault_drift)
            exchange_counts.append(result.exchange_counts[0])
        drifts = np.asarray(drifts)
        m = float(np.mean(exchange_counts))
        predicted_std = np.sqrt(m * sigma ** 2 / 2.0)
        # E[D] = 0 by exchangeability of the pair values
        assert abs(drifts.mean()) < 3.0 * predicted_std / np.sqrt(len(drifts))
        assert 0.4 * predicted_std < drifts.std(ddof=1) < 2.5 * predicted_std

    def test_retransmit_recovers_five_fold_at_ten_percent(self):
        """The PR's acceptance headline at test scale: >= 5× drift
        reduction from retransmission at 10 % reply loss."""
        n, runs, cycles = 20_000, 5, 40
        spec = MessageFaultSpec(reply_loss=0.1)
        mean_drift = {}
        for policy in ("none", "retransmit"):
            samples = []
            for run_seed in spawn_streams(11, runs):
                engine = GossipEngine(make_scenario(
                    n=n, seed=run_seed, message_faults=spec,
                    retry=retry_for_policy(policy),
                ))
                monitor = engine.register_monitor(MassConservationMonitor())
                try:
                    engine.run(cycles)
                finally:
                    engine.close()
                samples.append(abs(monitor.fault_drift) / n)
            mean_drift[policy] = float(np.mean(samples))
        assert mean_drift["none"] >= 5.0 * mean_drift["retransmit"], (
            f"retransmit cut drift only "
            f"{mean_drift['none'] / mean_drift['retransmit']:.2f}x "
            f"(none={mean_drift['none']:.3e}, "
            f"retransmit={mean_drift['retransmit']:.3e})"
        )
