"""Cross-backend equivalence suite.

The vectorized backend consumes the same RNG draws as the reference
backend and applies exchanges in conflict-free batches that preserve
per-node exchange order, so for GETPAIR_SEQ-style cycles it must
reproduce the reference trajectories **bitwise** — across topologies,
message loss, crashes and partitions. Where ordering could legitimately
differ (§3's analysis only depends on the φ distribution), we also
check the statistical property directly: the vectorized backend's
empirical convergence rate matches the paper's 1/(2√e) SEQ rate.
"""

import numpy as np
import pytest

from repro.avg.theory import RATE_SEQ
from repro.core import (
    GeometricMeanAggregate,
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    SizeEstimationConfig,
    SizeEstimationExperiment,
    moment_values,
)
from repro.failures import (
    ConstantRateChurn,
    CrashPlan,
    OscillatingChurn,
)
from repro.failures.partition import PartitionSchedule
from repro.kernel import ChurnSpec, EpochSpec, GossipEngine, Scenario
from repro.topology import (
    BarabasiAlbertTopology,
    CompleteTopology,
    ErdosRenyiTopology,
    RandomRegularTopology,
    RingTopology,
)


def both_backends(scenario_kwargs, cycles=12):
    """Run the same scenario on both backends; return (ref, vec) as
    (engine, result) pairs."""
    outputs = []
    for backend in ("reference", "vectorized"):
        engine = GossipEngine(
            Scenario(backend=backend, **scenario_kwargs)
        )
        result = engine.run(cycles)
        outputs.append((engine, result))
    return outputs


def assert_identical(ref, vec):
    ref_engine, ref_result = ref
    vec_engine, vec_result = vec
    assert np.array_equal(ref_engine.matrix, vec_engine.matrix)
    assert ref_result.exchange_counts == vec_result.exchange_counts
    for name in ref_result.instance_names:
        assert np.array_equal(
            ref_result.variance_array(name), vec_result.variance_array(name)
        )
        assert np.array_equal(
            ref_result.mean_array(name), vec_result.mean_array(name)
        )


def topologies():
    # regular, irregular (ER) and heavy-tailed (scale-free) sparse
    # overlays all ride the same CSR partner draw; the bitwise contract
    # must hold on every one of them
    return [
        CompleteTopology(400),
        RandomRegularTopology(400, 8, seed=21),
        RingTopology(400),
        ErdosRenyiTopology(400, 0.05, seed=22),
        BarabasiAlbertTopology(400, 5, seed=23),
    ]


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("topology", topologies(),
                             ids=lambda t: type(t).__name__)
    def test_lossless(self, topology):
        values = np.random.default_rng(1).normal(5.0, 2.0, topology.n)
        ref, vec = both_backends(
            dict(topology=topology, values=values, seed=31)
        )
        assert_identical(ref, vec)

    @pytest.mark.parametrize("topology", topologies(),
                             ids=lambda t: type(t).__name__)
    def test_with_message_loss(self, topology):
        values = np.random.default_rng(2).normal(5.0, 2.0, topology.n)
        ref, vec = both_backends(
            dict(topology=topology, values=values, loss_probability=0.3,
                 seed=32)
        )
        assert_identical(ref, vec)

    def test_with_crash_plan(self):
        topology = CompleteTopology(400)
        values = np.random.default_rng(3).normal(5.0, 2.0, topology.n)
        plan = CrashPlan()
        plan.add(2, list(range(60)))
        plan.add(6, list(range(60, 100)))
        ref, vec = both_backends(
            dict(topology=topology, values=values, crash_plan=plan, seed=33)
        )
        assert_identical(ref, vec)
        assert ref[0].alive_count == 300

    def test_with_partition(self):
        n = 400
        topology = CompleteTopology(n)
        values = np.random.default_rng(4).normal(5.0, 2.0, n)
        schedule = PartitionSchedule.random_split(n, 2, start=2, end=8, seed=5)
        ref, vec = both_backends(
            dict(topology=topology, values=values, partition=schedule,
                 seed=34)
        )
        assert_identical(ref, vec)

    def test_loss_and_crashes_together(self):
        topology = RandomRegularTopology(400, 10, seed=22)
        values = np.random.default_rng(5).normal(5.0, 2.0, topology.n)
        plan = CrashPlan()
        plan.add(3, list(range(40)))
        ref, vec = both_backends(
            dict(topology=topology, values=values, loss_probability=0.2,
                 crash_plan=plan, seed=35)
        )
        assert_identical(ref, vec)

    def test_multi_aggregate_matrix(self):
        topology = CompleteTopology(400)
        values = np.random.default_rng(6).normal(5.0, 2.0, topology.n)
        ref, vec = both_backends(
            dict(
                topology=topology,
                values=values,
                aggregates={
                    "mean": MeanAggregate(),
                    "m2": MeanAggregate(),
                    "max": MaxAggregate(),
                    "min": MinAggregate(),
                },
                initial={"m2": moment_values(values, 2)},
                seed=36,
            )
        )
        assert_identical(ref, vec)

    def test_fallback_combine_array(self):
        """Aggregates without a closed-form vectorized combine go
        through the scalar elementwise fallback and still match."""
        from repro.core import AggregateFunction

        class ScalarGeometric(GeometricMeanAggregate):
            # inherit only the scalar combine; vector path takes the
            # generic AggregateFunction fallback
            def combine_array(self, x, y):
                return AggregateFunction.combine_array(self, x, y)

        topology = CompleteTopology(200)
        values = np.random.default_rng(7).lognormal(0.5, 0.3, topology.n)
        ref, vec = both_backends(
            dict(
                topology=topology,
                values=values,
                aggregates={"geo": ScalarGeometric()},
                seed=37,
            ),
            cycles=8,
        )
        assert_identical(ref, vec)


class TestChurnEquivalence:
    """The bitwise contract extends to dynamic membership: churn and
    epoch restarts are engine-level (alive-mask mutation plus row
    recycling), so backends still see identical inputs every cycle."""

    def assert_identical_dynamic(self, ref_engine, ref_result,
                                 vec_engine, vec_result):
        assert np.array_equal(ref_engine.matrix, vec_engine.matrix)
        assert np.array_equal(ref_engine.alive_mask, vec_engine.alive_mask)
        assert ref_engine.capacity == vec_engine.capacity
        assert ref_result.exchange_counts == vec_result.exchange_counts
        assert ref_result.alive_counts == vec_result.alive_counts

    def run_both(self, scenario_kwargs, cycles):
        outputs = []
        for backend in ("reference", "vectorized"):
            engine = GossipEngine(Scenario(backend=backend, **scenario_kwargs))
            outputs.append((engine, engine.run(cycles)))
        return outputs

    def test_joins_and_leaves(self):
        n = 300
        values = np.random.default_rng(8).normal(5.0, 2.0, n)
        (ref_e, ref_r), (vec_e, vec_r) = self.run_both(
            dict(
                topology=CompleteTopology(n),
                values=values,
                churn=ConstantRateChurn(joins_per_cycle=7, leaves_per_cycle=4),
                seed=41,
            ),
            cycles=15,
        )
        self.assert_identical_dynamic(ref_e, ref_r, vec_e, vec_r)
        assert ref_e.alive_count == n + 15 * (7 - 4)

    def test_oscillating_churn_with_loss(self):
        n = 400
        values = np.random.default_rng(9).normal(5.0, 2.0, n)
        (ref_e, ref_r), (vec_e, vec_r) = self.run_both(
            dict(
                topology=CompleteTopology(n),
                values=values,
                churn=OscillatingChurn(n, 40, 20, fluctuation=3),
                loss_probability=0.2,
                seed=42,
            ),
            cycles=30,
        )
        self.assert_identical_dynamic(ref_e, ref_r, vec_e, vec_r)

    def test_crash_plan_with_epoch_restarts(self):
        """Crash plans stay valid with epochs alone (no recycling ever
        re-targets their node ids) and the trajectories stay bitwise."""
        n = 300
        values = np.random.default_rng(10).normal(5.0, 2.0, n)
        plan = CrashPlan()
        plan.add(4, list(range(50)))
        (ref_e, ref_r), (vec_e, vec_r) = self.run_both(
            dict(
                topology=CompleteTopology(n),
                values=values,
                epochs=EpochSpec(cycles_per_epoch=6),
                crash_plan=plan,
                seed=43,
            ),
            cycles=12,
        )
        self.assert_identical_dynamic(ref_e, ref_r, vec_e, vec_r)
        assert ref_e.alive_count == n - 50

    def test_epoch_restarts_from_attributes(self):
        """Default restart (reseed=None) with churn: joiners wait for
        the next epoch and every restart re-seeds from attributes."""
        n = 256
        values = np.random.default_rng(11).normal(5.0, 2.0, n)
        (ref_e, ref_r), (vec_e, vec_r) = self.run_both(
            dict(
                topology=CompleteTopology(n),
                values=values,
                churn=ChurnSpec(
                    model=ConstantRateChurn(
                        joins_per_cycle=3, leaves_per_cycle=3
                    ),
                    join_values=lambda m, rng: rng.normal(5.0, 2.0, m),
                ),
                epochs=EpochSpec(cycles_per_epoch=10),
                seed=44,
            ),
            cycles=30,
        )
        self.assert_identical_dynamic(ref_e, ref_r, vec_e, vec_r)
        assert ref_e.epoch == 2

    def test_size_estimation_trajectories(self):
        """The full Figure 4 pipeline — per-epoch leader election,
        variable instance counts, churn — is bitwise-reproducible
        across backends."""
        config = SizeEstimationConfig(
            cycles=90, cycles_per_epoch=30, initial_size=500, seed=45
        )
        churn = OscillatingChurn(500, 50, 60, fluctuation=2)
        runs = {}
        for backend in ("reference", "vectorized"):
            experiment = SizeEstimationExperiment(
                config, churn=churn, backend=backend
            )
            experiment.run()
            runs[backend] = experiment
        ref, vec = runs["reference"], runs["vectorized"]
        assert ref.size_trace == vec.size_trace
        assert len(ref.reports) == len(vec.reports) == 3
        for ref_report, vec_report in zip(ref.reports, vec.reports):
            assert ref_report.estimate_mean == vec_report.estimate_mean
            assert ref_report.estimate_min == vec_report.estimate_min
            assert ref_report.estimate_max == vec_report.estimate_max
            assert ref_report.size_at_start == vec_report.size_at_start
            assert ref_report.reporting_nodes == vec_report.reporting_nodes


class TestStatisticalEquivalence:
    def test_vectorized_seq_rate_matches_theory(self):
        """Independent of bitwise agreement, the vectorized backend's
        per-cycle variance reduction sits at the §3.3.3 SEQ rate."""
        topology = CompleteTopology(2000)
        rates = []
        for seed in range(5):
            values = np.random.default_rng(seed).normal(0.0, 1.0, topology.n)
            scenario = Scenario(
                topology, values, seed=100 + seed, backend="vectorized"
            )
            trajectory = GossipEngine(scenario).run(12).variance_array()
            ratios = trajectory[1:] / trajectory[:-1]
            rates.append(np.exp(np.log(ratios).mean()))
        assert np.mean(rates) == pytest.approx(RATE_SEQ, rel=0.1)
