"""Tests for the kernel-hosted membership layer.

Covers the declarative :class:`NewscastSpec` (validation,
normalization, scenario-level rejections), the
:class:`PartnerProvider` protocol, the oracle provider's RNG-stream
identity with the historical draw algorithms, the Newscast view
machinery (bootstrap, joins, growth, merge invariants), bitwise
cross-backend equivalence of value *and* view trajectories, and the
zero-degree isolated-node regression. Distribution-level acceptance
tests (in-degree tails, oracle-vs-newscast Figure-4 parity) are marked
``membership`` and deselected from tier-1.
"""

import numpy as np
import pytest

from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.errors import ConfigurationError, TopologyError
from repro.kernel import (
    ChurnTrace,
    GossipEngine,
    NewscastSpec,
    NewscastViews,
    OracleProvider,
    Scenario,
)
from repro.kernel.adversary import AdversarySpec
from repro.kernel.backends import VectorizedBackend
from repro.kernel.backends.base import (
    merge_views_batch,
    merge_views_sequential,
)
from repro.kernel.membership import build_provider, resolve_membership
from repro.kernel.pairs import PairProtocolSpec
from repro.rng import make_rng
from repro.topology import AdjacencyTopology, CompleteTopology, RingTopology

BACKENDS = ["reference", "vectorized", "sharded:2", "sharded:4"]


def scenario_with(n=300, seed=7, values_seed=2, **kwargs):
    values = make_rng(values_seed).normal(10.0, 3.0, n)
    return Scenario(CompleteTopology(n), values, seed=seed, **kwargs)


def run_engine(scenario, cycles):
    engine = GossipEngine(scenario)
    try:
        for _ in range(cycles):
            engine.run_cycle()
        matrix = engine.matrix
        views = engine.membership_views
        alive = engine.alive_mask
    finally:
        engine.close()
    return matrix, views, alive


class TestSpecValidation:
    def test_spec_defaults(self):
        spec = NewscastSpec()
        assert spec.view_size == 20
        assert spec.refresh_every == 1

    def test_spec_rejects_bad_view_size(self):
        with pytest.raises(ConfigurationError):
            NewscastSpec(view_size=0)

    def test_spec_rejects_bad_refresh(self):
        with pytest.raises(ConfigurationError):
            NewscastSpec(refresh_every=0)

    def test_resolve_names(self):
        assert resolve_membership(None) is None
        assert resolve_membership("oracle") is None
        assert resolve_membership("newscast") == NewscastSpec()
        spec = NewscastSpec(view_size=5)
        assert resolve_membership(spec) is spec
        with pytest.raises(ConfigurationError):
            resolve_membership("gnutella")

    def test_scenario_normalizes_string(self):
        scenario = scenario_with(membership="newscast")
        assert scenario.membership == NewscastSpec()
        assert scenario_with(membership="oracle").membership is None

    def test_scenario_rejects_non_complete_topology(self):
        values = make_rng(2).normal(10.0, 3.0, 50)
        with pytest.raises(ConfigurationError):
            Scenario(RingTopology(50, 2), values, membership="newscast")

    def test_scenario_rejects_pair_mode(self):
        with pytest.raises(ConfigurationError):
            scenario_with(
                membership="newscast",
                pair_protocol=PairProtocolSpec(selector="seq"),
            )

    def test_scenario_rejects_eclipse_adversary(self):
        with pytest.raises(ConfigurationError):
            scenario_with(
                membership="newscast",
                adversary=AdversarySpec(kind="eclipse", fraction=0.1),
            )


class TestProviderProtocol:
    def test_build_provider(self):
        assert build_provider(None).name == "oracle"
        assert build_provider(NewscastSpec()).name == "newscast"

    def test_engine_exposes_provider(self):
        with GossipEngine(scenario_with()) as engine:
            assert engine.membership_name == "oracle"
            assert engine.membership_views is None
            assert engine.partner_provider.draws_valid_participants

    def test_newscast_engine_exposes_views(self):
        spec = NewscastSpec(view_size=8)
        with GossipEngine(scenario_with(membership=spec)) as engine:
            assert engine.membership_name == "newscast"
            views = engine.membership_views
            assert views.shape == (300, 8)
            assert views.dtype == np.int32
            assert not engine.partner_provider.draws_valid_participants
            state = engine.partner_provider.state()
            assert state["name"] == "newscast"
            assert state["view_size"] == 8


class TestOracleRngIdentity:
    """The oracle provider must consume the RNG stream exactly as the
    historically inlined draw code did."""

    def test_static_draw_is_topology_draw(self):
        topology = RingTopology(64, 4)
        provider = OracleProvider()
        provider._topology = topology
        provider._dynamic = False
        initiators = np.arange(0, 64, 2, dtype=np.int64)
        out = np.empty(len(initiators), dtype=np.int32)
        provider.draw(initiators, make_rng(11), out)
        expected = topology.random_neighbor_array(
            initiators, make_rng(11), out=np.empty_like(out)
        )
        assert np.array_equal(out, expected)

    def test_dynamic_draw_algorithm(self):
        provider = OracleProvider()
        provider._topology = None
        provider._dynamic = True
        initiators = np.array([3, 7, 9, 12, 20, 41], dtype=np.int64)
        count = len(initiators)
        out = np.empty(count, dtype=np.int64)
        provider.draw(initiators, make_rng(5), out)
        # replay: uniform positions with the self-pick shift
        rng = make_rng(5)
        positions = rng.integers(0, count, size=count)
        clash = positions == np.arange(count)
        if clash.any():
            positions[clash] = (positions[clash] + 1) % count
        assert np.array_equal(out, initiators[positions])
        assert not np.any(out == initiators)

    def test_membership_none_equals_oracle_string(self):
        matrix_none, _, _ = run_engine(scenario_with(membership=None), 10)
        matrix_oracle, _, _ = run_engine(
            scenario_with(membership="oracle"), 10
        )
        assert np.array_equal(matrix_none, matrix_oracle)


class TestNewscastViews:
    def test_bootstrap_invariants(self):
        views = NewscastViews(100, 12, make_rng(3))
        rows = np.arange(100)[:, None]
        assert views.views.shape == (100, 12)
        assert not np.any(views.views == rows)
        assert views.views.min() >= 0 and views.views.max() < 100

    def test_view_size_capped(self):
        views = NewscastViews(4, 20, make_rng(3))
        assert views.view_size == 3

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ConfigurationError):
            NewscastViews(1, 5, make_rng(0))
        with pytest.raises(ConfigurationError):
            NewscastViews(10, 0, make_rng(0))

    def test_grow_preserves_rows(self):
        views = NewscastViews(50, 6, make_rng(4))
        before = views.views.copy()
        views.grow(80)
        assert views.capacity == 80
        assert np.array_equal(views.views[:50], before)
        assert np.all(views.views[50:] == -1)

    def test_seed_rows_alive_no_self(self):
        views = NewscastViews(60, 8, make_rng(5))
        alive = np.ones(60, dtype=bool)
        alive[40:] = False
        slots = np.array([41, 47, 59], dtype=np.int64)
        views.seed_rows(slots, alive, make_rng(6))
        seeded = views.views[slots]
        assert np.all(seeded < 40)  # contacts drawn among alive nodes
        assert not np.any(seeded == slots[:, None])

    def test_draw_partners_from_own_row(self):
        views = NewscastViews(40, 5, make_rng(7))
        initiators = np.arange(40, dtype=np.int64)
        out = np.empty(40, dtype=np.int32)
        for trial in range(10):
            views.draw_partners(initiators, make_rng(trial), out)
            for node in range(40):
                assert out[node] in views.views[node]


class TestMergePrimitives:
    def test_batch_matches_sequential(self):
        rng = make_rng(3)
        n, v = 400, 7
        views = rng.integers(0, n, size=(n, v), dtype=np.int32)
        rows = np.arange(n, dtype=np.int32)[:, None]
        np.copyto(views, (views + 1) % n, where=views == rows)
        perm = rng.permutation(n)
        batch_a = perm[:150].astype(np.int64)
        batch_b = perm[150:300].astype(np.int64)
        batched = views.copy()
        stepped = views.copy()
        merge_views_batch(batched, batch_a, batch_b)
        merge_views_sequential(stepped, batch_a, batch_b)
        assert np.array_equal(batched, stepped)

    def test_merge_invariants(self):
        rng = make_rng(8)
        n, v = 200, 6
        views = rng.integers(0, n, size=(n, v), dtype=np.int32)
        rows = np.arange(n, dtype=np.int32)[:, None]
        np.copyto(views, (views + 1) % n, where=views == rows)
        perm = rng.permutation(n)
        batch_a, batch_b = perm[:80], perm[80:160]
        merge_views_batch(views, batch_a, batch_b)
        # no self-loops, partner at the head, first-distinct dedup
        assert not np.any(views == rows)
        assert np.array_equal(views[batch_a][:, 0], batch_b.astype(np.int32))
        for node in np.concatenate([batch_a, batch_b]):
            row = views[node].tolist()
            assert len(set(row)) == v


class TestEngineIntegration:
    def test_views_stay_self_loop_free(self):
        spec = NewscastSpec(view_size=10)
        trace = ChurnTrace.sessions(
            25, arrivals_per_cycle=5, mean_session=10, seed=3
        )
        scenario = scenario_with(membership=spec, churn=trace)
        with GossipEngine(scenario) as engine:
            for _ in range(25):
                engine.run_cycle()
                views = engine.membership_views
                alive = engine.alive_mask
                rows = np.flatnonzero(alive)
                assert not np.any(views[rows] == rows[:, None])

    def test_dead_entries_age_off_after_churn_settles(self):
        joins = np.zeros(45, dtype=np.int64)
        leaves = np.zeros(45, dtype=np.int64)
        joins[:15] = 6
        leaves[:15] = 10
        scenario = scenario_with(
            n=500,
            membership=NewscastSpec(view_size=12),
            churn=ChurnTrace(joins, leaves),
        )
        with GossipEngine(scenario) as engine:
            for _ in range(45):
                engine.run_cycle()
            alive = engine.alive_mask
            rows = engine.membership_views[alive]
            assert alive[rows].all()

    def test_refresh_every_skips_cycles(self):
        spec = NewscastSpec(view_size=6, refresh_every=3)
        with GossipEngine(scenario_with(membership=spec)) as engine:
            engine.run_cycle()  # cycle 0: refresh runs
            after_first = engine.membership_views
            engine.run_cycle()  # cycle 1: skipped — views frozen
            assert np.array_equal(after_first, engine.membership_views)

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_backend_bitwise_equivalence(self, backend):
        """Values AND view matrices match the reference backend bitwise,
        under trace churn and epoch-free dynamics."""
        trace = ChurnTrace.sessions(
            18, arrivals_per_cycle=6, mean_session=8, seed=11
        )
        kwargs = dict(
            n=400, membership=NewscastSpec(view_size=9), churn=trace
        )
        ref_matrix, ref_views, _ = run_engine(
            scenario_with(backend="reference", **kwargs), 18
        )
        matrix, views, _ = run_engine(
            scenario_with(backend=backend, **kwargs), 18
        )
        assert np.array_equal(ref_matrix, matrix)
        assert np.array_equal(ref_views, views)

    def test_static_newscast_backend_equivalence(self):
        kwargs = dict(n=350, membership=NewscastSpec(view_size=7))
        ref_matrix, ref_views, _ = run_engine(
            scenario_with(backend="reference", **kwargs), 12
        )
        for backend in BACKENDS[1:]:
            matrix, views, _ = run_engine(
                scenario_with(backend=backend, **kwargs), 12
            )
            assert np.array_equal(ref_matrix, matrix), backend
            assert np.array_equal(ref_views, views), backend


class TestIsolatedNodes:
    """Zero-degree overlay nodes: skipped as initiators, never drawn,
    value intact — instead of a raise from deep inside the CSR batch."""

    def edges_with_isolated(self, n=40):
        # a path over nodes 0..n-3; the last two nodes are isolated
        return [(i, i + 1) for i in range(n - 3)]

    def test_isolated_mask(self):
        topology = AdjacencyTopology.from_edges(40, self.edges_with_isolated())
        mask = topology.isolated_mask()
        assert mask is not None
        assert np.flatnonzero(mask).tolist() == [38, 39]
        # fully-connected CSR reports None (no mask allocation)
        assert RingTopology(10, 2).isolated_mask() is None

    def test_csr_draw_still_raises_on_direct_call(self):
        topology = AdjacencyTopology.from_edges(40, self.edges_with_isolated())
        with pytest.raises(TopologyError, match="no neighbors"):
            topology.random_neighbor_array(
                np.array([38], dtype=np.int64), make_rng(0)
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_runs_with_isolated_nodes(self, backend):
        n = 40
        topology = AdjacencyTopology.from_edges(n, self.edges_with_isolated())
        values = make_rng(1).normal(5.0, 2.0, n)
        scenario = Scenario(topology, values, seed=9, backend=backend)
        with GossipEngine(scenario) as engine:
            for _ in range(8):
                engine.run_cycle()
            matrix = engine.matrix
            assert engine.alive_mask.all()
        # the isolated nodes kept their initial values untouched
        assert matrix[38, 0] == values[38]
        assert matrix[39, 0] == values[39]
        # the connected component still averaged
        assert np.var(matrix[:38, 0]) < np.var(values[:38])

    def test_isolated_engine_matches_reference(self):
        n = 40
        topology = AdjacencyTopology.from_edges(n, self.edges_with_isolated())
        values = make_rng(1).normal(5.0, 2.0, n)
        results = {}
        for backend in BACKENDS:
            scenario = Scenario(topology, values, seed=9, backend=backend)
            with GossipEngine(scenario) as engine:
                for _ in range(8):
                    engine.run_cycle()
                results[backend] = engine.matrix
        for backend in BACKENDS[1:]:
            assert np.array_equal(results["reference"], results[backend])


@pytest.mark.membership
class TestMembershipAcceptance:
    """Distribution-level oracle-vs-newscast parity (scheduled jobs)."""

    def test_in_degree_tail_close_to_uniform(self):
        """After mixing, the view in-degree tail must stay within a
        small factor of the uniform-oracle mean — the 'approximately
        random overlay' property the aggregation analysis needs."""
        n, v = 5000, 20
        rng = make_rng(17)
        views = NewscastViews(n, v, rng)
        backend = VectorizedBackend()
        everyone = np.arange(n, dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        for _ in range(30):
            views.refresh(everyone, alive, rng, backend)
        in_degrees = views.in_degree_distribution()
        assert in_degrees.min() >= 1
        assert in_degrees.max() <= 4 * in_degrees.mean()

    def test_figure4_error_parity(self):
        """Size estimation through newscast views stays within the
        same 5% mean relative-error acceptance bound as the oracle
        draw, on the Figure-4 workload (diurnal ±10% trace churn)."""
        n, cycles = 20_000, 120
        errors = {}
        for membership in (None, "newscast"):
            config = SizeEstimationConfig(
                cycles=cycles, cycles_per_epoch=30, initial_size=n, seed=13
            )
            trace = ChurnTrace.diurnal(
                n, cycles, period=cycles // 2, amplitude=n // 10,
                fluctuation=n // 1000,
            )
            experiment = SizeEstimationExperiment(
                config,
                churn=trace,
                backend="vectorized",
                membership=membership,
            )
            experiment.run()
            assert experiment.reports, membership
            errors[membership] = float(
                np.mean([r.relative_error for r in experiment.reports])
            )
        assert errors[None] < 0.05
        assert errors["newscast"] < 0.05
