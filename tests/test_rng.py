"""Tests for repro.rng — seeded stream management."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rng import (
    choice_excluding,
    derive_seed,
    make_rng,
    random_permutation,
    spawn_runs,
    spawn_streams,
)


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 10**9)
        b = make_rng(2).integers(0, 10**9)
        assert a != b

    def test_none_seed_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        rng = make_rng(seq)
        assert isinstance(rng, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(ConfigurationError):
            make_rng("not a seed")


class TestSpawnStreams:
    def test_count(self):
        streams = spawn_streams(0, 5)
        assert len(streams) == 5

    def test_streams_are_independent(self):
        a, b = spawn_streams(0, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_deterministic_given_seed(self):
        first = [g.integers(0, 10**9) for g in spawn_streams(3, 4)]
        second = [g.integers(0, 10**9) for g in spawn_streams(3, 4)]
        assert first == second

    def test_zero_count(self):
        assert spawn_streams(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_streams(1, -1)

    def test_from_generator(self):
        gen = np.random.default_rng(9)
        streams = spawn_streams(gen, 3)
        assert len(streams) == 3

    def test_from_seed_sequence(self):
        streams = spawn_streams(np.random.SeedSequence(11), 2)
        assert len(streams) == 2

    def test_spawn_runs_alias(self):
        a = [g.integers(0, 10**9) for g in spawn_runs(5, 3)]
        b = [g.integers(0, 10**9) for g in spawn_streams(5, 3)]
        assert a == b


class TestDeriveSeed:
    def test_deterministic(self):
        a = np.random.default_rng(derive_seed(1, 2, 3)).integers(0, 10**9)
        b = np.random.default_rng(derive_seed(1, 2, 3)).integers(0, 10**9)
        assert a == b

    def test_path_changes_stream(self):
        a = np.random.default_rng(derive_seed(1, 2)).integers(0, 10**9)
        b = np.random.default_rng(derive_seed(1, 3)).integers(0, 10**9)
        assert a != b

    def test_negative_path_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_seed(1, -1)


class TestHelpers:
    def test_random_permutation_is_permutation(self, rng):
        perm = random_permutation(rng, 50)
        assert sorted(perm.tolist()) == list(range(50))

    def test_random_permutation_negative(self, rng):
        with pytest.raises(ConfigurationError):
            random_permutation(rng, -1)

    def test_choice_excluding_never_returns_excluded(self, rng):
        for _ in range(200):
            assert choice_excluding(rng, 5, 2) != 2

    def test_choice_excluding_covers_range(self, rng):
        seen = {choice_excluding(rng, 4, 1) for _ in range(200)}
        assert seen == {0, 2, 3}

    def test_choice_excluding_uniform(self, rng):
        draws = [choice_excluding(rng, 3, 0) for _ in range(3000)]
        ones = draws.count(1)
        assert 1300 < ones < 1700  # ~50%

    def test_choice_excluding_needs_two(self, rng):
        with pytest.raises(ConfigurationError):
            choice_excluding(rng, 1, 0)
