"""Tests for the partition fault model and the split-brain scenario."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.failures import PartitionSchedule
from repro.simulator.cycle_sim import CycleSimulator
from repro.topology import CompleteTopology


class TestSchedule:
    def test_groups_must_cover(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule(4, [[0, 1]], start=0, end=5)

    def test_groups_must_be_disjoint(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule(3, [[0, 1], [1, 2]], start=0, end=5)

    def test_node_range_checked(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule(2, [[0], [5]], start=0, end=5)

    def test_window_validated(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule(2, [[0], [1]], start=5, end=2)

    def test_blocks_only_cross_cut_during_window(self):
        schedule = PartitionSchedule(4, [[0, 1], [2, 3]], start=2, end=6)
        assert not schedule.blocks(0, 0, 2)  # before the window
        assert schedule.blocks(3, 0, 2)  # cross-cut during
        assert not schedule.blocks(3, 0, 1)  # same side during
        assert not schedule.blocks(6, 0, 2)  # healed

    def test_random_split_covers(self):
        schedule = PartitionSchedule.random_split(20, 3, start=0, end=1, seed=1)
        groups = schedule.groups()
        assert sorted(sum(groups, [])) == list(range(20))
        assert {len(g) for g in groups} <= {6, 7}

    def test_random_split_validated(self):
        with pytest.raises(ConfigurationError):
            PartitionSchedule.random_split(5, 1, start=0, end=1)
        with pytest.raises(ConfigurationError):
            PartitionSchedule.random_split(3, 5, start=0, end=1)

    def test_group_of(self):
        schedule = PartitionSchedule(4, [[0, 3], [1, 2]], start=0, end=1)
        assert schedule.group_of(0) == schedule.group_of(3)
        assert schedule.group_of(0) != schedule.group_of(1)


class TestSplitBrainScenario:
    def test_sides_converge_separately_then_globally(self):
        """During the partition each side converges to its own average;
        after healing the network re-converges to the global one."""
        n = 400
        left = list(range(0, n // 2))
        right = list(range(n // 2, n))
        values = np.zeros(n)
        values[right] = 10.0  # the two sides disagree strongly
        schedule = PartitionSchedule(n, [left, right], start=0, end=20)
        sim = CycleSimulator(
            CompleteTopology(n), values, partition=schedule, seed=2
        )
        sim.run(20)
        state = sim.all_values
        # split brain: tight agreement within sides, gulf between them
        assert np.asarray(state)[left].std() < 1e-3
        assert np.asarray(state)[right].std() < 1e-3
        assert abs(np.mean(state[: n // 2]) - 0.0) < 1e-3
        assert abs(np.mean(state[n // 2:]) - 10.0) < 1e-3
        # heal and re-converge globally
        sim.run(20)
        assert sim.variance() < 1e-9
        assert sim.mean() == pytest.approx(5.0, abs=1e-9)

    def test_partition_conserves_global_mass(self):
        n = 100
        values = np.random.default_rng(3).normal(5, 2, n)
        schedule = PartitionSchedule.random_split(n, 4, start=0, end=10, seed=4)
        sim = CycleSimulator(
            CompleteTopology(n), values, partition=schedule, seed=5
        )
        sim.run(15)
        assert sim.mean() == pytest.approx(values.mean(), abs=1e-12)
