"""Tests for the failures package: loss schedules, crash plans, churn."""

import pytest

from repro.errors import ConfigurationError
from repro.failures import (
    ChurnStep,
    ConstantRateChurn,
    CrashPlan,
    NoChurn,
    OscillatingChurn,
    constant_loss,
    random_crash_plan,
)
from repro.failures.message_loss import burst_loss


class TestLossSchedules:
    def test_constant(self):
        schedule = constant_loss(0.2)
        assert schedule(0) == 0.2
        assert schedule(999) == 0.2

    def test_constant_validated(self):
        with pytest.raises(ConfigurationError):
            constant_loss(1.2)

    def test_burst(self):
        schedule = burst_loss(0.01, 0.5, burst_start=10, burst_end=20)
        assert schedule(5) == 0.01
        assert schedule(10) == 0.5
        assert schedule(19) == 0.5
        assert schedule(20) == 0.01

    def test_burst_validated(self):
        with pytest.raises(ConfigurationError):
            burst_loss(0.1, 0.2, 5, 3)
        with pytest.raises(ConfigurationError):
            burst_loss(-0.1, 0.2, 1, 2)


class TestCrashPlan:
    def test_add_and_query(self):
        plan = CrashPlan()
        plan.add(5, [1, 2])
        plan.add(5, [3])
        assert plan.crashing_at(5) == [1, 2, 3]
        assert plan.crashing_at(6) == []
        assert plan.total_crashes == 3

    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashPlan().add(-1, [0])

    def test_random_plan_size(self):
        plan = random_crash_plan(100, 0.3, at_cycle=4, seed=1)
        assert len(plan.crashing_at(4)) == 30
        assert plan.total_crashes == 30

    def test_random_plan_unique_victims(self):
        victims = random_crash_plan(50, 0.5, at_cycle=0, seed=2).crashing_at(0)
        assert len(set(victims)) == len(victims)

    def test_random_plan_zero_fraction(self):
        plan = random_crash_plan(100, 0.0, at_cycle=0, seed=3)
        assert plan.total_crashes == 0

    def test_random_plan_validated(self):
        with pytest.raises(ConfigurationError):
            random_crash_plan(10, 1.5, at_cycle=0)

    def test_random_plan_deterministic(self):
        a = random_crash_plan(100, 0.2, at_cycle=1, seed=9).crashing_at(1)
        b = random_crash_plan(100, 0.2, at_cycle=1, seed=9).crashing_at(1)
        assert a == b


class TestChurnModels:
    def test_no_churn(self):
        assert NoChurn().step(0, 100) == ChurnStep(0, 0)

    def test_constant_rate(self):
        step = ConstantRateChurn(3, 2).step(0, 100)
        assert step == ChurnStep(joins=3, leaves=2)

    def test_constant_rate_never_empties_network(self):
        step = ConstantRateChurn(0, 50).step(0, 10)
        assert step.leaves == 9

    def test_constant_rate_validated(self):
        with pytest.raises(ConfigurationError):
            ConstantRateChurn(-1, 0)

    def test_oscillation_bounds(self):
        churn = OscillatingChurn(1000, 100, 200)
        targets = [churn.target_size(c) for c in range(200)]
        assert max(targets) == 1100
        assert min(targets) == 900

    def test_oscillation_period(self):
        churn = OscillatingChurn(1000, 100, 40)
        assert churn.target_size(0) == churn.target_size(40)

    def test_steps_track_target(self):
        churn = OscillatingChurn(1000, 100, 100, fluctuation=0)
        size = 1000
        for cycle in range(100):
            step = churn.step(cycle, size)
            size += step.joins - step.leaves
            assert size == churn.target_size(cycle)

    def test_fluctuation_added_to_both_sides(self):
        churn = OscillatingChurn(1000, 0, 10, fluctuation=7)
        step = churn.step(0, 1000)  # on-target: only fluctuation
        assert step.joins == 7
        assert step.leaves == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OscillatingChurn(0, 0, 10)
        with pytest.raises(ConfigurationError):
            OscillatingChurn(100, 100, 10)
        with pytest.raises(ConfigurationError):
            OscillatingChurn(100, 10, 1)
        with pytest.raises(ConfigurationError):
            OscillatingChurn(100, 10, 10, fluctuation=-1)
