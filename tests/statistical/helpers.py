"""Seeded-CI assertion helpers for the statistical layer.

Statistical tests must not flake, so every test here fixes its seeds
and asserts against a normal-approximation confidence interval over
the replicated estimates (``z = 2.58`` ≈ 99 %) rather than a bare
tolerance. ``min_margin`` puts a floor under the band for
near-deterministic estimators whose sample spread collapses to ~0.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.stats import summarize

#: 99 % two-sided normal quantile — tight enough to mean something,
#: loose enough that a correct estimator essentially never trips it
DEFAULT_Z = 2.58


def ci_margin(
    samples: Sequence[float], *, z: float = DEFAULT_Z, min_margin: float = 0.0
) -> float:
    """Half-width of the CI around the sample mean, floored."""
    return max(z * summarize(samples).standard_error, min_margin)


def assert_within_ci(
    samples: Sequence[float],
    expected: float,
    *,
    z: float = DEFAULT_Z,
    min_margin: float = 0.0,
    label: str = "estimate",
) -> None:
    """Assert ``expected`` lies inside the CI of ``samples``' mean."""
    array = np.asarray(samples, dtype=np.float64)
    assert np.isfinite(array).all(), f"{label}: non-finite samples {array}"
    mean = float(array.mean())
    margin = ci_margin(array, z=z, min_margin=min_margin)
    assert abs(mean - expected) <= margin, (
        f"{label}: mean {mean:.6g} of {len(array)} replications is not "
        f"within {margin:.3g} of expected {expected:.6g} "
        f"(samples {np.array2string(array, precision=4)})"
    )


def assert_relative_error_below(
    samples: Sequence[float],
    truth: float,
    bound: float,
    *,
    label: str = "estimate",
) -> None:
    """Assert every replication's relative error stays under ``bound``."""
    array = np.asarray(samples, dtype=np.float64)
    errors = np.abs(array - truth) / abs(truth)
    worst = float(errors.max())
    assert worst <= bound, (
        f"{label}: worst relative error {worst:.4f} over {len(array)} "
        f"replications exceeds {bound} (samples "
        f"{np.array2string(array, precision=4)})"
    )
