"""Distribution-level acceptance tests.

Bitwise backend equivalence (tests/kernel/) proves the backends agree;
this layer checks the *numbers are right*: estimates from replicated
seeded runs must land inside analytically predicted bands. Fast
sanity checks run in tier-1; the deeper replications carry the
``slow_statistical`` marker and are deselected by default (see
pytest.ini).
"""
