"""Acceptance bands for robust size estimation under adversaries.

The headline robustness claim, at test scale: with a fraction ``f`` of
lying nodes the reported COUNT column is a contaminated sample —
``(1-f)`` honest reports converged to ``1/n`` plus ``f`` copies of the
lie — so the *median* (and the 25 %-trimmed mean, for ``f`` below its
breakdown point) recover the true size while the plain mean lands on
the analytically predictable contaminated value. Every test replicates
over fixed seeds and asserts CI bands, never single-run tolerances.
"""

import numpy as np
import pytest

from repro.kernel import (
    AdversarySpec,
    ChurnSpec,
    EpochSpec,
    GossipEngine,
    MultiAggregateSpec,
    min_size_estimate,
    robust_reduce,
    size_from_count,
)
from repro.failures import ConstantRateChurn
from repro.topology import CompleteTopology

from .helpers import (
    assert_relative_error_below,
    assert_within_ci,
)

N = 600
CYCLES = 25
LIE = 100.0
SEEDS = (11, 12, 13, 14, 15)


def lying_run_reports(n, fraction, seed, cycles=CYCLES, value=LIE):
    """Reported COUNT column after a lying-adversary counting run."""
    spec = MultiAggregateSpec.counting(n)
    scenario = spec.scenario(
        CompleteTopology(n),
        adversary=AdversarySpec(kind="lying", fraction=fraction, value=value),
        seed=seed,
    )
    engine = GossipEngine(scenario)
    try:
        engine.run(cycles)
        return engine.reported_column("count")
    finally:
        engine.close()


def size_estimates(reports, method, n):
    return size_from_count(robust_reduce(reports, method), cap=100.0 * n)


class TestLyingContamination:
    """Fast tier-1 sanity: the robust/plain contrast at 10–20 % liars."""

    @pytest.mark.parametrize("fraction", [0.1, 0.2])
    def test_median_and_trimmed_recover_size(self, fraction):
        for method in ("median", "trimmed"):
            estimates = [
                size_estimates(
                    lying_run_reports(N, fraction, seed), method, N
                )
                for seed in SEEDS
            ]
            assert_relative_error_below(
                estimates, N, 0.05, label=f"{method} @ {fraction:.0%}"
            )

    @pytest.mark.parametrize("fraction", [0.1, 0.2])
    def test_plain_mean_diverges(self, fraction):
        estimates = [
            size_estimates(lying_run_reports(N, fraction, seed), "mean", N)
            for seed in SEEDS
        ]
        # the contaminated mean is dominated by the lie: the implied
        # size collapses to ~1/(f * LIE), nowhere near n
        assert max(estimates) < 0.01 * N


@pytest.mark.slow_statistical
class TestContaminatedMeanBand:
    """The plain mean fails *predictably*: reported mean ≈
    (1-f)/n + f·LIE, a pure two-point mixture once converged."""

    @pytest.mark.parametrize("fraction", [0.05, 0.1, 0.2])
    def test_reported_mean_matches_mixture(self, fraction):
        means = []
        liar_counts = []
        for seed in SEEDS:
            reports = lying_run_reports(N, fraction, seed, cycles=40)
            means.append(float(reports.mean()))
            liar_counts.append(int((reports == LIE).sum()))
        liars = round(fraction * N)
        assert liar_counts == [liars] * len(SEEDS)
        predicted = (N - liars) / N / N + liars / N * LIE
        assert_within_ci(
            means,
            predicted,
            min_margin=1e-3 * predicted,
            label=f"reported mean @ {fraction:.0%}",
        )


@pytest.mark.slow_statistical
class TestBreakdownPoints:
    """Trimmed mean at its design point and beyond."""

    def test_trimmed_survives_at_design_fraction(self):
        # 25 % trim absorbs f = 0.2 one-sided contamination
        estimates = [
            size_estimates(lying_run_reports(N, 0.2, seed), "trimmed", N)
            for seed in SEEDS
        ]
        assert_relative_error_below(estimates, N, 0.02, label="trimmed @ 20%")

    def test_trimmed_breaks_past_design_fraction(self):
        # f = 0.3 > trim = 0.25: survivors of the one-sided trim still
        # contain lies and the estimate collapses like the mean's
        estimates = [
            size_estimates(lying_run_reports(N, 0.3, seed), "trimmed", N)
            for seed in SEEDS
        ]
        assert max(estimates) < 0.5 * N

    def test_median_survives_past_trim_breakdown(self):
        estimates = [
            size_estimates(lying_run_reports(N, 0.3, seed), "median", N)
            for seed in SEEDS
        ]
        assert_relative_error_below(estimates, N, 0.05, label="median @ 30%")


@pytest.mark.slow_statistical
class TestChurnBand:
    """Counting under 1 %/cycle churn with epoch restarts: the epoch's
    closing estimate tracks the network size one epoch earlier (the
    Figure 4 lag), within a band set by the churn itself."""

    def test_epoch_estimate_tracks_lagged_size(self):
        cycles_per_epoch = 25
        errors = []
        for seed in SEEDS:
            n = 500
            spec = MultiAggregateSpec.counting(n)

            def reseed(context):
                # lowest participant slot is the epoch's leader
                rows = np.zeros(len(context.participants), dtype=np.float64)
                rows[0] = 1.0
                return rows

            per_cycle = max(1, round(0.01 * n))
            scenario = spec.scenario(
                CompleteTopology(n),
                churn=ChurnSpec(
                    model=ConstantRateChurn(
                        joins_per_cycle=per_cycle,
                        leaves_per_cycle=per_cycle,
                    )
                ),
                epochs=EpochSpec(
                    cycles_per_epoch=cycles_per_epoch, reseed=reseed
                ),
                seed=seed,
            )
            engine = GossipEngine(scenario)
            try:
                result = engine.run(2 * cycles_per_epoch)
                truth = result.alive_counts[cycles_per_epoch]
                estimate = size_from_count(
                    robust_reduce(engine.reported_column("count"), "median"),
                    cap=100.0 * n,
                )
            finally:
                engine.close()
            errors.append(abs(estimate - truth) / truth)
        assert float(np.mean(errors)) < 0.1, errors


@pytest.mark.slow_statistical
class TestExtremeValueBand:
    """The §4 extreme-value size bundle: N̂ = (k-1)/Σ minima is
    unbiased with relative sd ≈ 1/√(k-2); the replicated mean must sit
    inside that predicted band."""

    def test_min_estimate_within_predicted_band(self):
        n, instances = 500, 48
        estimates = []
        for seed in SEEDS:
            spec = MultiAggregateSpec.extrema(
                n, instances=instances, kind="min", seed=seed
            )
            engine = GossipEngine(
                spec.scenario(CompleteTopology(n), seed=seed)
            )
            try:
                engine.run(CYCLES)
                minima = [
                    float(engine.reported_column(name).mean())
                    for name in spec.aggregates
                ]
            finally:
                engine.close()
            estimates.append(min_size_estimate(minima))
        relative_sd = 1.0 / np.sqrt(instances - 2)
        assert_within_ci(
            estimates,
            n,
            # the analytic per-replication spread, shrunk by √runs
            min_margin=2.58 * n * relative_sd / np.sqrt(len(SEEDS)),
            label="extreme-value size estimate",
        )
