"""Tests for topology.base — AdjacencyTopology validation and queries."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import AdjacencyTopology


def triangle():
    return AdjacencyTopology([[1, 2], [0, 2], [0, 1]])


class TestConstruction:
    def test_n(self):
        assert triangle().n == 3

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology([])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology([[0, 1], [0]])

    def test_asymmetry_rejected(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology([[1], []])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology([[5], [0]])

    def test_duplicate_neighbors_deduped(self):
        topo = AdjacencyTopology([[1, 1], [0, 0]])
        assert topo.degree(0) == 1

    def test_from_edges(self):
        topo = AdjacencyTopology.from_edges(3, [(0, 1), (1, 2)])
        assert topo.degree(1) == 2
        assert topo.degree(0) == 1

    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology.from_edges(2, [(1, 1)])

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology.from_edges(2, [(0, 5)])


class TestQueries:
    def test_neighbors_sorted(self):
        topo = AdjacencyTopology([[2, 1], [0], [0]])
        assert topo.neighbors(0).tolist() == [1, 2]

    def test_degree(self):
        assert triangle().degree(0) == 2

    def test_node_range_checked(self):
        with pytest.raises(TopologyError):
            triangle().neighbors(3)
        with pytest.raises(TopologyError):
            triangle().degree(-1)

    def test_has_edge(self):
        topo = AdjacencyTopology.from_edges(3, [(0, 1)])
        assert topo.has_edge(0, 1)
        assert topo.has_edge(1, 0)
        assert not topo.has_edge(0, 2)

    def test_edge_count(self):
        assert triangle().edge_count() == 3

    def test_edges_iteration(self):
        assert sorted(triangle().edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_read_only(self):
        arr = triangle().edge_array()
        with pytest.raises(ValueError):
            arr[0, 0] = 9


class TestRandomQueries:
    def test_random_neighbor_valid(self, rng):
        topo = triangle()
        for _ in range(50):
            assert topo.random_neighbor(0, rng) in (1, 2)

    def test_random_neighbor_isolated_raises(self, rng):
        topo = AdjacencyTopology([[1], [0], []])
        with pytest.raises(TopologyError):
            topo.random_neighbor(2, rng)

    def test_random_edge_valid(self, rng):
        topo = triangle()
        for _ in range(20):
            i, j = topo.random_edge(rng)
            assert topo.has_edge(i, j)

    def test_random_edge_empty_raises(self, rng):
        topo = AdjacencyTopology([[], []])
        with pytest.raises(TopologyError):
            topo.random_edge(rng)

    def test_random_neighbor_array_matches_topology(self, rng):
        topo = triangle()
        nodes = np.array([0, 1, 2, 0])
        partners = topo.random_neighbor_array(nodes, rng)
        for node, partner in zip(nodes, partners):
            assert topo.has_edge(int(node), int(partner))


class TestNeighborMatrix:
    def test_regular_graph_matrix(self):
        topo = triangle()
        matrix = topo.neighbor_matrix()
        assert matrix.shape == (3, 2)

    def test_irregular_graph_raises(self):
        topo = AdjacencyTopology.from_edges(3, [(0, 1)])
        with pytest.raises(TopologyError):
            topo.neighbor_matrix()

    def test_matrix_cached_not_rebuilt(self):
        """Regression: neighbor_matrix() used to recompute the degree
        set and re-vstack the whole adjacency on every call — once per
        cycle of a regular-overlay run. It must now be the same cached
        CSR view on every call."""
        topo = triangle()
        first = topo.neighbor_matrix()
        second = topo.neighbor_matrix()
        assert first is second
        # a view into the CSR flat array, not a fresh allocation
        assert first.base is topo.neighbors(0).base

    def test_matrix_read_only(self):
        with pytest.raises(ValueError):
            triangle().neighbor_matrix()[0, 0] = 9

    def test_irregular_random_neighbor_array(self, rng):
        topo = AdjacencyTopology.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)])
        nodes = np.array([0, 1, 2, 3])
        partners = topo.random_neighbor_array(nodes, rng)
        for node, partner in zip(nodes, partners):
            assert topo.has_edge(int(node), int(partner))


class TestCsrLayout:
    def test_neighbors_is_csr_view(self):
        """Per-node neighbor queries are views into one flat array, not
        per-row allocations."""
        topo = triangle()
        assert topo.neighbors(0).base is topo.neighbors(2).base

    def test_neighbors_read_only(self):
        with pytest.raises(ValueError):
            triangle().neighbors(0)[0] = 5

    def test_zero_degree_node_draw_raises(self, rng):
        topo = AdjacencyTopology([[1], [0], []])
        with pytest.raises(TopologyError, match="node 2 has no neighbors"):
            topo.random_neighbor_array(np.array([0, 2]), rng)

    def test_draw_into_out_buffer(self, rng):
        topo = AdjacencyTopology.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)])
        nodes = np.array([0, 1, 2, 3])
        out = np.empty(4, dtype=np.int32)
        result = topo.random_neighbor_array(nodes, rng, out=out)
        assert result is out
        for node, partner in zip(nodes, out):
            assert topo.has_edge(int(node), int(partner))

    def test_uniform_over_irregular_degrees(self):
        """The CSR draw must be uniform per node even when degrees
        differ: every neighbor of a degree-d node appears with
        frequency ~1/d."""
        topo = AdjacencyTopology.from_edges(
            5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]
        )
        rng = np.random.default_rng(99)
        draws = 12000
        for node in (0, 1):
            partners = topo.random_neighbor_array(
                np.full(draws, node), rng
            )
            counts = np.bincount(partners, minlength=5)
            neighbors = topo.neighbors(node)
            assert set(np.nonzero(counts)[0]) == set(neighbors.tolist())
            expected = draws / len(neighbors)
            assert np.all(np.abs(counts[neighbors] - expected) < 0.15 * expected)
