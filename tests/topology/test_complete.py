"""Tests for the complete topology."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import CompleteTopology


class TestBasics:
    def test_degree(self):
        topo = CompleteTopology(10)
        assert all(topo.degree(i) == 9 for i in range(10))

    def test_neighbors_excludes_self(self):
        topo = CompleteTopology(5)
        assert 3 not in topo.neighbors(3).tolist()
        assert len(topo.neighbors(3)) == 4

    def test_edge_count(self):
        assert CompleteTopology(10).edge_count() == 45

    def test_has_edge(self):
        topo = CompleteTopology(4)
        assert topo.has_edge(0, 3)
        assert not topo.has_edge(2, 2)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            CompleteTopology(1)

    def test_node_range_checked(self):
        with pytest.raises(TopologyError):
            CompleteTopology(3).neighbors(3)


class TestRandomSelection:
    def test_random_neighbor_never_self(self, rng):
        topo = CompleteTopology(6)
        for node in range(6):
            for _ in range(50):
                assert topo.random_neighbor(node, rng) != node

    def test_random_neighbor_uniform(self, rng):
        topo = CompleteTopology(4)
        draws = [topo.random_neighbor(0, rng) for _ in range(6000)]
        counts = np.bincount(draws, minlength=4)
        assert counts[0] == 0
        assert all(1700 < c < 2300 for c in counts[1:])

    def test_random_edge_distinct(self, rng):
        topo = CompleteTopology(5)
        for _ in range(100):
            i, j = topo.random_edge(rng)
            assert i != j
            assert 0 <= i < 5 and 0 <= j < 5

    def test_random_neighbor_array_no_self(self, rng):
        topo = CompleteTopology(50)
        nodes = np.arange(50)
        for _ in range(20):
            partners = topo.random_neighbor_array(nodes, rng)
            assert not np.any(partners == nodes)
            assert partners.min() >= 0 and partners.max() < 50

    def test_random_neighbor_array_uniform(self, rng):
        topo = CompleteTopology(3)
        nodes = np.zeros(9000, dtype=np.int64)
        partners = topo.random_neighbor_array(nodes, rng)
        counts = np.bincount(partners, minlength=3)
        assert counts[0] == 0
        assert 4200 < counts[1] < 4800

    def test_memory_is_constant(self):
        # constructing a huge complete graph must be instant / tiny
        topo = CompleteTopology(10**6)
        assert topo.edge_count() == 10**6 * (10**6 - 1) // 2
