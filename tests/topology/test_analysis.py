"""Tests for topology.analysis — connectivity, degrees, diameter."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    AdjacencyTopology,
    CompleteTopology,
    RingTopology,
    connected_components,
    clustering_coefficient,
    degree_statistics,
    estimate_diameter,
    is_connected,
)


class TestComponents:
    def test_single_component(self):
        topo = RingTopology(10, 2)
        comps = connected_components(topo)
        assert len(comps) == 1
        assert comps[0] == list(range(10))

    def test_two_components(self):
        topo = AdjacencyTopology.from_edges(5, [(0, 1), (2, 3), (3, 4)])
        comps = connected_components(topo)
        assert len(comps) == 2
        assert comps[0] == [2, 3, 4]  # largest first
        assert comps[1] == [0, 1]

    def test_isolated_nodes(self):
        topo = AdjacencyTopology([[], [], []])
        assert len(connected_components(topo)) == 3

    def test_is_connected(self):
        assert is_connected(CompleteTopology(5))
        assert not is_connected(AdjacencyTopology([[], []]))


class TestDegreeStatistics:
    def test_regular(self):
        stats = degree_statistics(RingTopology(10, 4))
        assert stats.is_regular
        assert stats.mean == 4.0
        assert stats.std == 0.0

    def test_irregular(self):
        topo = AdjacencyTopology.from_edges(3, [(0, 1), (0, 2)])
        stats = degree_statistics(topo)
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert not stats.is_regular


class TestClustering:
    def test_complete_graph_fully_clustered(self):
        topo = CompleteTopology(6)
        assert clustering_coefficient(topo, 0) == pytest.approx(1.0)

    def test_tree_unclustered(self):
        topo = AdjacencyTopology.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert clustering_coefficient(topo, 0) == 0.0

    def test_degree_below_two_is_zero(self):
        topo = AdjacencyTopology.from_edges(2, [(0, 1)])
        assert clustering_coefficient(topo, 0) == 0.0


class TestDiameter:
    def test_complete_graph(self):
        assert estimate_diameter(CompleteTopology(20), seed=1) == 1

    def test_ring_diameter(self):
        # exact diameter of a 10-cycle is 5; sampled estimate reaches it
        assert estimate_diameter(RingTopology(10, 2), samples=10, seed=1) == 5

    def test_disconnected_raises(self):
        with pytest.raises(TopologyError):
            estimate_diameter(AdjacencyTopology([[], []]))
