"""Tests for Erdős–Rényi, ring, Watts–Strogatz, Barabási–Albert and star
topologies."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import (
    BarabasiAlbertTopology,
    ErdosRenyiTopology,
    RingTopology,
    StarTopology,
    WattsStrogatzTopology,
    clustering_coefficient,
    degree_statistics,
    is_connected,
)


class TestErdosRenyi:
    def test_p_zero_empty(self):
        topo = ErdosRenyiTopology(20, 0.0, seed=1)
        assert topo.edge_count() == 0

    def test_p_one_complete(self):
        topo = ErdosRenyiTopology(10, 1.0, seed=1)
        assert topo.edge_count() == 45

    def test_invalid_p(self):
        with pytest.raises(TopologyError):
            ErdosRenyiTopology(10, 1.5)

    def test_edge_count_near_expectation(self):
        n, p = 100, 0.1
        counts = [
            ErdosRenyiTopology(n, p, seed=s).edge_count() for s in range(5)
        ]
        expected = p * n * (n - 1) / 2
        assert 0.8 * expected < np.mean(counts) < 1.2 * expected

    def test_deterministic(self):
        a = ErdosRenyiTopology(30, 0.2, seed=3)
        b = ErdosRenyiTopology(30, 0.2, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_unrank_covers_all_pairs(self):
        n = 6
        pairs = {ErdosRenyiTopology._unrank(r, n) for r in range(15)}
        assert len(pairs) == 15
        assert all(i < j for i, j in pairs)

    def test_p_property(self):
        assert ErdosRenyiTopology(10, 0.3, seed=1).p == 0.3


class TestRing:
    def test_plain_cycle(self):
        topo = RingTopology(6, 2)
        assert topo.neighbors(0).tolist() == [1, 5]
        assert topo.edge_count() == 6

    def test_k4_lattice(self):
        topo = RingTopology(10, 4)
        assert sorted(topo.neighbors(0).tolist()) == [1, 2, 8, 9]

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            RingTopology(10, 3)

    def test_k_too_large_rejected(self):
        with pytest.raises(TopologyError):
            RingTopology(4, 4)

    def test_connected(self):
        assert is_connected(RingTopology(50, 2))

    def test_high_clustering_for_k4(self):
        topo = RingTopology(30, 4)
        assert clustering_coefficient(topo, 0) == 0.5


class TestWattsStrogatz:
    def test_beta_zero_is_lattice(self):
        ws = WattsStrogatzTopology(20, 4, 0.0, seed=1)
        ring = RingTopology(20, 4)
        assert sorted(ws.edges()) == sorted(ring.edges())

    def test_beta_one_rewires(self):
        ws = WattsStrogatzTopology(50, 4, 1.0, seed=2)
        ring = RingTopology(50, 4)
        assert sorted(ws.edges()) != sorted(ring.edges())

    def test_edge_count_preserved(self):
        ws = WattsStrogatzTopology(40, 4, 0.3, seed=3)
        assert ws.edge_count() == 80

    def test_invalid_beta(self):
        with pytest.raises(TopologyError):
            WattsStrogatzTopology(10, 2, -0.1)

    def test_mean_degree_preserved(self):
        ws = WattsStrogatzTopology(60, 6, 0.5, seed=4)
        assert degree_statistics(ws).mean == pytest.approx(6.0)

    def test_deterministic(self):
        a = WattsStrogatzTopology(30, 4, 0.2, seed=5)
        b = WattsStrogatzTopology(30, 4, 0.2, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())


class TestBarabasiAlbert:
    def test_edge_count(self):
        n, m = 50, 3
        topo = BarabasiAlbertTopology(n, m, seed=1)
        # star seed contributes m edges; each of (n - m - 1) arrivals adds m
        assert topo.edge_count() == m + (n - m - 1) * m

    def test_min_degree_is_m(self):
        topo = BarabasiAlbertTopology(80, 2, seed=2)
        assert degree_statistics(topo).minimum >= 2

    def test_hubs_emerge(self):
        topo = BarabasiAlbertTopology(300, 2, seed=3)
        stats = degree_statistics(topo)
        assert stats.maximum > 4 * stats.mean  # heavy tail

    def test_connected(self):
        assert is_connected(BarabasiAlbertTopology(100, 2, seed=4))

    def test_invalid_params(self):
        with pytest.raises(TopologyError):
            BarabasiAlbertTopology(5, 0)
        with pytest.raises(TopologyError):
            BarabasiAlbertTopology(3, 3)


class TestSparseRandomNeighborDraws:
    """Bounds + uniformity of the vectorized CSR partner draw on
    irregular overlays — the draw the kernel engine uses for every
    sparse-topology cycle."""

    def bounds(self, topo, rng, draws=4):
        nodes = np.arange(topo.n)
        for _ in range(draws):
            partners = topo.random_neighbor_array(nodes, rng)
            for node, partner in zip(nodes.tolist(), partners.tolist()):
                assert topo.has_edge(node, partner)
                assert partner != node

    def test_erdos_renyi_bounds(self, rng):
        topo = ErdosRenyiTopology(150, 0.15, seed=8)
        self.bounds(topo, rng)

    def test_scale_free_bounds(self, rng):
        topo = BarabasiAlbertTopology(150, 3, seed=9)
        self.bounds(topo, rng)

    @pytest.mark.parametrize("factory", [
        lambda: ErdosRenyiTopology(60, 0.2, seed=10),
        lambda: BarabasiAlbertTopology(60, 3, seed=11),
    ], ids=["erdos-renyi", "scale-free"])
    def test_per_node_uniformity(self, factory):
        """Each node's draw is uniform over its own neighbor list,
        whatever its degree — including the hubs of a scale-free
        graph."""
        topo = factory()
        rng = np.random.default_rng(42)
        degrees = np.array([topo.degree(v) for v in range(topo.n)])
        hub = int(np.argmax(degrees))
        lightest = int(np.argmin(degrees))
        draws = 8000
        for node in (hub, lightest):
            partners = topo.random_neighbor_array(np.full(draws, node), rng)
            counts = np.bincount(partners, minlength=topo.n)
            neighbors = topo.neighbors(node)
            assert set(np.nonzero(counts)[0]) == set(neighbors.tolist())
            expected = draws / len(neighbors)
            assert np.all(
                np.abs(counts[neighbors] - expected) < 0.25 * expected
            )


class TestStar:
    def test_structure(self):
        topo = StarTopology(5)
        assert topo.degree(0) == 4
        assert all(topo.degree(i) == 1 for i in range(1, 5))

    def test_hub_property(self):
        assert StarTopology(4).hub == 0

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            StarTopology(1)

    def test_connected(self):
        assert is_connected(StarTopology(20))

    def test_leaf_random_neighbor_is_hub(self, rng):
        topo = StarTopology(6)
        assert topo.random_neighbor(3, rng) == 0
