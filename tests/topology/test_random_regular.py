"""Tests for the random k-regular generator (pairing + edge-swap repair)."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import RandomRegularTopology, degree_statistics, is_connected


class TestValidation:
    def test_odd_nk_rejected(self):
        with pytest.raises(TopologyError):
            RandomRegularTopology(5, 3)

    def test_k_ge_n_rejected(self):
        with pytest.raises(TopologyError):
            RandomRegularTopology(4, 4)

    def test_nonpositive_k_rejected(self):
        with pytest.raises(TopologyError):
            RandomRegularTopology(4, 0)


class TestStructure:
    @pytest.mark.parametrize("n,k", [(10, 3), (50, 4), (100, 20), (64, 7)])
    def test_exact_degrees(self, n, k):
        topo = RandomRegularTopology(n, k, seed=1)
        stats = degree_statistics(topo)
        assert stats.is_regular
        assert stats.minimum == k

    def test_no_self_loops(self):
        topo = RandomRegularTopology(60, 5, seed=2)
        for i in range(60):
            assert i not in topo.neighbors(i).tolist()

    def test_no_parallel_edges(self):
        topo = RandomRegularTopology(60, 5, seed=3)
        for i in range(60):
            row = topo.neighbors(i).tolist()
            assert len(row) == len(set(row))

    def test_connected_by_default(self):
        topo = RandomRegularTopology(100, 3, seed=4)
        assert is_connected(topo)

    def test_paper_view_size_20(self):
        topo = RandomRegularTopology(500, 20, seed=5)
        assert degree_statistics(topo).minimum == 20
        assert is_connected(topo)

    def test_k_property(self):
        assert RandomRegularTopology(20, 4, seed=6).k == 4


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = RandomRegularTopology(40, 4, seed=9)
        b = RandomRegularTopology(40, 4, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seed_different_graph(self):
        a = RandomRegularTopology(40, 4, seed=9)
        b = RandomRegularTopology(40, 4, seed=10)
        assert sorted(a.edges()) != sorted(b.edges())


class TestRandomness:
    def test_edges_vary_across_nodes(self):
        """A pairing-model graph should not be a disjoint union of
        cliques or other degenerate structure: spot-check edge spread."""
        topo = RandomRegularTopology(200, 4, seed=11)
        spans = [abs(i - j) for i, j in topo.edges()]
        assert max(spans) > 100  # long-range edges exist

    def test_k2_is_union_of_cycles(self):
        topo = RandomRegularTopology(30, 2, seed=12)
        assert is_connected(topo)  # require_connected makes it one cycle
        assert topo.edge_count() == 30
