"""Checkpoint/resume correctness: bitwise equality and format hygiene.

A checkpoint captures everything the next cycle reads — value matrix,
liveness masks, RNG state, epoch bookkeeping, membership views, pair-φ
log — so a restored engine must be indistinguishable from one that
never stopped, on any backend and under any partner-draw layer. The
tests here assert that end to end (full run vs checkpoint-and-resume,
bitwise) and cover the on-disk format's crash discipline: atomic
payload-then-manifest commits, torn-checkpoint skipping, checksum
verification, and retention pruning.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.size_estimation import (
    SizeEstimationConfig,
    SizeEstimationExperiment,
)
from repro.errors import CheckpointError, ConfigurationError
from repro.failures import ConstantRateChurn
from repro.kernel import (
    CheckpointSpec,
    ChurnSpec,
    GossipEngine,
    PairProtocolSpec,
    Scenario,
    latest_checkpoint,
    list_checkpoints,
    prune_checkpoints,
    read_checkpoint,
)
from repro.topology import CompleteTopology

pytestmark = pytest.mark.faults


def _scenario(n=120, cycles=20, seed=23, backend="reference",
              membership=None, churn=False, pair=False):
    values = np.random.default_rng(5).normal(12.0, 3.0, n)
    kwargs = {}
    if membership is not None:
        kwargs["membership"] = membership
    if churn:
        kwargs["churn"] = ChurnSpec(model=ConstantRateChurn(2, 3))
    if pair:
        kwargs["pair_protocol"] = PairProtocolSpec(selector="pm",
                                                   track_phi=True)
    return Scenario(CompleteTopology(n), values, cycles=cycles,
                    seed=seed, backend=backend, **kwargs)


def _round_trip(make_scenario, total, split, tmp_path,
                resume_backend=None):
    """Run ``total`` cycles straight vs checkpoint-at-``split`` +
    resume; return both engines (caller closes)."""
    full = GossipEngine(make_scenario())
    full.run(total)

    part = GossipEngine(make_scenario())
    part.run(split)
    manifest = part.checkpoint(tmp_path)
    part.close()

    scenario = make_scenario()
    if resume_backend is not None:
        scenario = scenario.replace(backend=resume_backend)
    resumed = GossipEngine.restore(scenario, manifest)
    assert resumed.cycle == split
    resumed.run(total - split)
    return full, resumed


class TestRoundTrip:
    """Resume is bitwise-identical to never stopping."""

    @pytest.mark.parametrize("membership", [None, "newscast"])
    @pytest.mark.parametrize(
        "backend", ["reference", "vectorized", "sharded:2"]
    )
    def test_backends_and_providers(self, backend, membership, tmp_path):
        full, resumed = _round_trip(
            lambda: _scenario(backend=backend, membership=membership,
                              churn=True),
            total=20, split=12, tmp_path=tmp_path,
        )
        try:
            assert np.array_equal(full.matrix, resumed.matrix)
            assert np.array_equal(full.alive_mask, resumed.alive_mask)
            assert full._rng.bit_generator.state == \
                resumed._rng.bit_generator.state
        finally:
            full.close()
            resumed.close()

    def test_cross_backend_resume(self, tmp_path):
        """A run checkpointed under the sharded pool resumes in-process
        (and the other way round) without a bit of drift."""
        full, resumed = _round_trip(
            lambda: _scenario(n=400, backend="sharded:2", churn=True),
            total=18, split=10, tmp_path=tmp_path,
            resume_backend="reference",
        )
        try:
            assert np.array_equal(full.matrix, resumed.matrix)
            assert np.array_equal(full.alive_mask, resumed.alive_mask)
        finally:
            full.close()
            resumed.close()

    def test_pair_mode_phi_log(self, tmp_path):
        """Pair-mode state (φ log included) survives the round trip;
        the resumed ``run()`` reports only its own rows while the
        engine keeps the cumulative log."""
        full, resumed = _round_trip(
            lambda: _scenario(n=90, backend="reference", pair=True),
            total=14, split=8, tmp_path=tmp_path,
        )
        try:
            assert np.array_equal(full.matrix, resumed.matrix)
            assert np.array_equal(np.stack(full._phi_log),
                                  np.stack(resumed._phi_log))
        finally:
            full.close()
            resumed.close()

    def test_experiment_resume(self, tmp_path):
        """``SizeEstimationExperiment.resume`` rebuilds the epoch
        bookkeeping (reports, in-flight instance count) so resumed
        epochs finalize exactly like uninterrupted ones."""
        def config(cycles):
            return SizeEstimationConfig(
                cycles=cycles, cycles_per_epoch=10,
                expected_leaders=2.0, initial_size=300, seed=99,
            )

        full = SizeEstimationExperiment(
            config(40), churn=ConstantRateChurn(4, 6),
            backend="reference")
        full.run()

        part = SizeEstimationExperiment(
            config(25), churn=ConstantRateChurn(4, 6),
            backend="reference")
        part.run(checkpoint=CheckpointSpec(directory=tmp_path,
                                           every_cycles=25))

        resumed = SizeEstimationExperiment(
            config(40), churn=ConstantRateChurn(4, 6),
            backend="vectorized")
        resumed.resume(tmp_path)

        assert len(full.reports) == len(resumed.reports)
        for a, b in zip(full.reports, resumed.reports):
            assert repr(a) == repr(b)
        assert full.size_trace[25:] == resumed.size_trace

    def test_resume_past_the_end_is_an_error(self, tmp_path):
        part = SizeEstimationExperiment(
            SizeEstimationConfig(cycles=20, cycles_per_epoch=10,
                                 initial_size=200, seed=7),
            backend="reference")
        part.run(checkpoint=CheckpointSpec(directory=tmp_path,
                                           every_cycles=20))
        shorter = SizeEstimationExperiment(
            SizeEstimationConfig(cycles=10, cycles_per_epoch=10,
                                 initial_size=200, seed=7),
            backend="reference")
        with pytest.raises(ConfigurationError):
            shorter.resume(tmp_path)


class TestRngStateProperty:
    """Property: the RNG bit-generator state round-trips exactly for
    any (seed, split) and any backend × partner-provider pairing, so
    every post-resume draw matches the uninterrupted run's."""

    @pytest.mark.parametrize("membership", [None, "newscast"])
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           split=st.integers(min_value=1, max_value=11))
    def test_rng_round_trip(self, backend, membership, seed, split,
                            tmp_path_factory):
        tmp = tmp_path_factory.mktemp("rng")
        full, resumed = _round_trip(
            lambda: _scenario(n=64, cycles=12, seed=seed,
                              backend=backend, membership=membership),
            total=12, split=split, tmp_path=tmp,
        )
        try:
            assert full._rng.bit_generator.state == \
                resumed._rng.bit_generator.state
            assert np.array_equal(full.matrix, resumed.matrix)
        finally:
            full.close()
            resumed.close()


class TestFormat:
    """On-disk discipline: atomicity, torn-write recovery, checksums,
    retention."""

    def _write_one(self, tmp_path, cycles=5):
        engine = GossipEngine(_scenario(n=40, cycles=cycles))
        engine.run(cycles)
        manifest = engine.checkpoint(tmp_path)
        engine.close()
        return manifest

    def test_manifest_is_the_commit_record(self, tmp_path):
        manifest = self._write_one(tmp_path)
        payload = manifest.with_suffix(".npz")
        assert manifest.exists() and payload.exists()
        data = json.loads(manifest.read_text())
        assert data["cycle"] == 5
        assert data["sha256"]

    def test_torn_checkpoint_is_skipped(self, tmp_path):
        """A manifest whose payload vanished (the torn half of a crash
        mid-write) must not be offered as the latest checkpoint."""
        older = self._write_one(tmp_path, cycles=3)
        newer = self._write_one(tmp_path, cycles=6)
        newer.with_suffix(".npz").unlink()
        assert latest_checkpoint(tmp_path) == older

    def test_checksum_mismatch_raises(self, tmp_path):
        manifest = self._write_one(tmp_path)
        payload = manifest.with_suffix(".npz")
        raw = bytearray(payload.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        payload.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            read_checkpoint(manifest)

    def test_prune_keeps_newest(self, tmp_path):
        engine = GossipEngine(_scenario(n=40, cycles=8))
        for _ in range(4):
            engine.run(2)
            engine.checkpoint(tmp_path)
        engine.close()
        assert len(list_checkpoints(tmp_path)) == 4
        removed = prune_checkpoints(tmp_path, keep=2)
        assert removed == 2
        remaining = list_checkpoints(tmp_path)
        assert [json.loads(p.read_text())["cycle"] for p in remaining] \
            == [6, 8]

    def test_auto_checkpoint_spec(self, tmp_path):
        """``CheckpointSpec(every_cycles=..., keep=...)`` writes on the
        cadence and enforces retention as the run goes."""
        engine = GossipEngine(_scenario(n=40, cycles=12))
        engine.run(12, checkpoint=CheckpointSpec(
            directory=tmp_path, every_cycles=3, keep=2))
        engine.close()
        remaining = list_checkpoints(tmp_path)
        assert [json.loads(p.read_text())["cycle"] for p in remaining] \
            == [9, 12]

    def test_scenario_validation_fails_fast(self, tmp_path):
        manifest = self._write_one(tmp_path)
        with pytest.raises(CheckpointError):
            _scenario(n=80).from_checkpoint(manifest)

    def test_spec_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointSpec(directory=tmp_path, every_cycles=0)
        with pytest.raises(ConfigurationError):
            CheckpointSpec(directory=tmp_path, every_cycles=5, keep=0)
