"""The ``parent_kill`` fault: checkpoint, SIGKILL the run, resume.

The harshest crash model the harness covers — the whole process dies
with no chance to clean up. :func:`spawn_and_kill` launches a
checkpointing CLI run as a subprocess and SIGKILLs it the moment a
checkpoint commits; the test then resumes from the surviving manifest
in-process and asserts the completed run is bitwise-identical to one
that was never interrupted. This exercises the full stack end to end:
CLI flag wiring, atomic checkpoint writes, torn-state skipping, and
``SizeEstimationExperiment.resume``'s epoch rehydration.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.size_estimation import (
    SizeEstimationConfig,
    SizeEstimationExperiment,
)
from repro.errors import SimulationError
from repro.failures import OscillatingChurn
from repro.kernel import spawn_and_kill

pytestmark = pytest.mark.faults

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

N = 500
CYCLES = 120
EPOCH = 30
SEED = 9


def _experiment():
    # must mirror the CLI's figure4 scenario exactly — the checkpoint
    # serializes no callables, so the resumed run supplies the same
    # churn model the killed subprocess used
    return SizeEstimationExperiment(
        SizeEstimationConfig(cycles=CYCLES, cycles_per_epoch=EPOCH,
                             initial_size=N, seed=SEED),
        churn=OscillatingChurn(N, N // 10, period=CYCLES // 2,
                               fluctuation=max(N // 1000, 1)),
        backend="reference",
    )


def test_sigkill_mid_run_resumes_bitwise(tmp_path):
    manifest = spawn_and_kill(
        ["python", "-m", "repro", "figure4",
         "--n", str(N), "--cycles", str(CYCLES), "--epoch", str(EPOCH),
         "--seed", str(SEED), "--churn-trace", "oscillating",
         "--checkpoint-dir", str(tmp_path),
         "--checkpoint-every", str(EPOCH)],
        tmp_path,
        env={"PYTHONPATH": REPO_SRC},
    )
    killed_at = json.loads(manifest.read_text())["cycle"]
    assert killed_at % EPOCH == 0 and killed_at >= EPOCH

    full = _experiment()
    full.run()

    resumed = _experiment()
    resumed.resume(manifest)

    assert len(full.reports) == len(resumed.reports)
    for a, b in zip(full.reports, resumed.reports):
        assert repr(a) == repr(b)
    assert np.array_equal(full._engine.matrix, resumed._engine.matrix)
    assert np.array_equal(full._engine.alive_mask,
                          resumed._engine.alive_mask)


def test_spawn_and_kill_reports_early_exit(tmp_path):
    """A child that dies before its first checkpoint is a harness
    error, not a silent hang: the stderr rides in the message."""
    with pytest.raises(SimulationError, match="before writing"):
        spawn_and_kill(
            ["python", "-c", "import sys; sys.exit(3)"],
            tmp_path, timeout=30.0,
        )
