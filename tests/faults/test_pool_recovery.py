"""Self-healing shard pool: injected faults, recovery, bitwise equality.

The pool's failure policy (``on_failure``) decides what a dead or
stalled worker costs: ``"raise"`` fails fast with a typed
:class:`ShardPoolError` (the historical behaviour), ``"respawn"``
replays the journaled in-flight schedule inline and restarts the
worker, ``"inline"`` degrades the backend to single-process vectorized
execution for the rest of the run. Either way the run's trajectory
must stay **bitwise identical** to an undisturbed reference run — the
journal snapshot/replay exists precisely so recovery consumes no
randomness and loses no exchanges. Faults are injected declaratively
via :class:`FaultSpec` through ``ShardedBackend.inject_faults``.
"""

import os
import pickle

import numpy as np
import pytest

from repro.errors import ShardPoolError
from repro.failures import ConstantRateChurn
from repro.kernel import (
    ChurnSpec,
    FaultSpec,
    GossipEngine,
    Scenario,
    ShardedBackend,
)
from repro.kernel.backends import POOL_FAILURE_MODES
from repro.topology import CompleteTopology

pytestmark = pytest.mark.faults

N = 2500
CYCLES = 12


@pytest.fixture(scope="module")
def reference_run():
    """The undisturbed trajectory every recovered run must equal."""
    engine = GossipEngine(_scenario("reference"))
    engine.run(CYCLES)
    yield engine
    engine.close()


def _scenario(backend):
    values = np.random.default_rng(3).normal(10.0, 4.0, N)
    return Scenario(CompleteTopology(N), values,
                    churn=ChurnSpec(model=ConstantRateChurn(7, 11)),
                    cycles=CYCLES, seed=17, backend=backend)


def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm")
                if not name.startswith(".")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _run_with_faults(mode, faults, reference, max_respawns=2):
    """Run under injected faults; assert bitwise equality against the
    reference engine and no leaked shared-memory segments; return the
    backend's health report."""
    before = _shm_segments()
    backend = ShardedBackend(2, on_failure=mode, max_respawns=max_respawns)
    backend.inject_faults(faults)
    engine = GossipEngine(_scenario(backend))
    try:
        engine.run(CYCLES)
        assert np.array_equal(reference.matrix, engine.matrix)
        assert np.array_equal(reference.alive_mask, engine.alive_mask)
        report = backend.health_report()
    finally:
        engine.close()
    assert _shm_segments() <= before, "leaked /dev/shm segments"
    return report


class TestRecovery:
    def test_kill_worker_respawn(self, reference_run):
        report = _run_with_faults(
            "respawn",
            [FaultSpec("kill_worker", worker=1, at_call=4)],
            reference_run,
        )
        assert report.respawns == 1
        assert not report.degraded
        assert report.events and report.events[0]["action"] == "respawn"
        assert report.recovery_seconds > 0.0

    def test_corrupt_bank_respawn(self, reference_run):
        """A corrupted schedule bank is survivable because the journal
        copies were taken before the corruption hit shared memory."""
        report = _run_with_faults(
            "respawn",
            [FaultSpec("corrupt_bank", at_call=3)],
            reference_run,
        )
        assert report.respawns >= 1
        assert not report.degraded

    def test_delayed_ack_respawn(self, reference_run, monkeypatch):
        """A worker that stalls past the pool timeout is treated like a
        dead one: journal replay + respawn, still bitwise."""
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "0.5")
        report = _run_with_faults(
            "respawn",
            [FaultSpec("delay_ack", worker=0, at_call=2, delay=2.0)],
            reference_run,
        )
        assert report.respawns >= 1
        assert not report.degraded

    def test_kill_worker_inline_degrade(self, reference_run):
        report = _run_with_faults(
            "inline",
            [FaultSpec("kill_worker", worker=0, at_call=2)],
            reference_run,
        )
        assert report.degraded
        assert report.respawns == 0
        assert report.events[0]["action"] == "inline"

    def test_respawn_budget_exhaustion_degrades(self, reference_run):
        """More worker deaths than ``max_respawns`` flips respawn mode
        into the inline degrade path instead of failing the run."""
        report = _run_with_faults(
            "respawn",
            [FaultSpec("kill_worker", worker=1, at_call=2),
             FaultSpec("kill_worker", worker=0, at_call=5),
             FaultSpec("kill_worker", worker=1, at_call=8)],
            reference_run,
            max_respawns=2,
        )
        assert report.respawns == 2
        assert report.degraded
        assert [e["action"] for e in report.events] == \
            ["respawn", "respawn", "inline"]

    def test_raise_mode_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "3")
        before = _shm_segments()
        backend = ShardedBackend(2, on_failure="raise")
        backend.inject_faults(
            [FaultSpec("kill_worker", worker=1, at_call=3)])
        engine = GossipEngine(_scenario(backend))
        try:
            with pytest.raises(ShardPoolError):
                engine.run(CYCLES)
        finally:
            engine.close()
        assert _shm_segments() <= before, "leaked /dev/shm segments"


class TestConfiguration:
    def test_failure_modes_are_closed(self):
        assert POOL_FAILURE_MODES == ("raise", "respawn", "inline")
        with pytest.raises(Exception):
            ShardedBackend(2, on_failure="retry-forever")

    def test_env_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_ON_FAILURE", "respawn")
        backend = ShardedBackend(2)
        assert backend.on_failure == "respawn"
        backend.close()

    def test_inject_faults_validation(self):
        backend = ShardedBackend(2, on_failure="respawn")
        try:
            with pytest.raises(Exception):
                backend.inject_faults([FaultSpec("parent_kill")])
            with pytest.raises(Exception):
                backend.inject_faults(
                    [FaultSpec("kill_worker", worker=7)])
            with pytest.raises(Exception):
                backend.inject_faults(["kill_worker"])
        finally:
            backend.close()

    def test_fault_spec_validation(self):
        with pytest.raises(Exception):
            FaultSpec("meteor_strike")
        with pytest.raises(Exception):
            FaultSpec("kill_worker", at_call=-1)
        with pytest.raises(Exception):
            FaultSpec("delay_ack", delay=0.0)


class TestShardPoolError:
    """Satellite: the pool error survives pickling (worker -> parent
    pipes, CI subprocesses) and collapses to one greppable repr line."""

    def test_pickle_round_trip(self):
        error = ShardPoolError("apply", worker=3,
                               detail="Traceback ...\nboom")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ShardPoolError)
        assert clone.phase == "apply"
        assert clone.worker == 3
        assert clone.detail == error.detail
        assert str(clone) == str(error)

    def test_repr_is_one_line(self):
        error = ShardPoolError("barrier", worker=1,
                               detail="line one\nline two\n" + "x" * 400)
        text = repr(error)
        assert "\n" not in text
        assert "barrier" in text and "worker=1" in text
