"""Tests for simulator.metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator import MetricsRecorder, TimeSeries


class TestTimeSeries:
    def test_record_and_read(self):
        series = TimeSeries("variance")
        series.record(0.0, 1.0)
        series.record(1.0, 0.5)
        times, values = series.as_arrays()
        assert times.tolist() == [0.0, 1.0]
        assert values.tolist() == [1.0, 0.5]

    def test_monotone_time_enforced(self):
        series = TimeSeries("x")
        series.record(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            series.record(0.5, 0.0)

    def test_equal_times_allowed(self):
        series = TimeSeries("x")
        series.record(1.0, 0.0)
        series.record(1.0, 1.0)
        assert len(series) == 2

    def test_last(self):
        series = TimeSeries("x")
        series.record(0.0, 42.0)
        assert series.last() == 42.0

    def test_last_empty_raises(self):
        with pytest.raises(ConfigurationError):
            TimeSeries("x").last()


class TestMetricsRecorder:
    def test_auto_creates_series(self):
        recorder = MetricsRecorder()
        recorder.record("a", 0.0, 1.0)
        assert "a" in recorder
        assert recorder.series("a").last() == 1.0

    def test_unknown_series_raises(self):
        with pytest.raises(ConfigurationError):
            MetricsRecorder().series("missing")

    def test_names_sorted(self):
        recorder = MetricsRecorder()
        recorder.record("b", 0.0, 1.0)
        recorder.record("a", 0.0, 1.0)
        assert recorder.names() == ["a", "b"]
