"""Tests for simulator.clock."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator import DriftingClock, PerfectClock


class TestPerfectClock:
    def test_identity(self):
        clock = PerfectClock()
        assert clock.local_time(5.0) == 5.0
        assert clock.global_time(5.0) == 5.0

    def test_duration(self):
        assert PerfectClock().local_duration_to_global(3.0) == 3.0


class TestDriftingClock:
    def test_offset(self):
        clock = DriftingClock(offset=2.0)
        assert clock.local_time(0.0) == 2.0
        assert clock.global_time(2.0) == 0.0

    def test_rate(self):
        clock = DriftingClock(rate=2.0)
        assert clock.local_time(3.0) == 6.0
        assert clock.global_time(6.0) == 3.0

    def test_roundtrip(self):
        clock = DriftingClock(rate=1.0001, offset=-0.5)
        for t in (0.0, 1.0, 123.456):
            assert clock.global_time(clock.local_time(t)) == pytest.approx(t)

    def test_fast_clock_shortens_global_wait(self):
        # a fast clock (rate > 1) reaches a local deadline sooner
        clock = DriftingClock(rate=2.0)
        assert clock.local_duration_to_global(10.0) == pytest.approx(5.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftingClock(rate=0.0)

    def test_properties(self):
        clock = DriftingClock(rate=1.5, offset=0.25)
        assert clock.rate == 1.5
        assert clock.offset == 0.25
