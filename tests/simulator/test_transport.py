"""Tests for simulator.transport — latency and loss models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator import (
    BernoulliLoss,
    ConstantLatency,
    EventDrivenSimulator,
    ExponentialLatency,
    NoLoss,
    Transport,
    UniformLatency,
)


@pytest.fixture
def engine():
    return EventDrivenSimulator()


def make_transport(engine, inbox, **kwargs):
    return Transport(engine, inbox.append, seed=1, **kwargs)


class TestLatencyModels:
    def test_constant(self, rng):
        assert ConstantLatency(0.5).sample(rng) == 0.5

    def test_constant_default_zero(self, rng):
        assert ConstantLatency().sample(rng) == 0.0

    def test_constant_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)

    def test_uniform_bounds(self, rng):
        model = UniformLatency(0.1, 0.2)
        samples = [model.sample(rng) for _ in range(100)]
        assert all(0.1 <= s <= 0.2 for s in samples)

    def test_uniform_invalid(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.3, 0.2)

    def test_exponential_mean(self, rng):
        model = ExponentialLatency(2.0)
        samples = [model.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.1)

    def test_exponential_invalid(self):
        with pytest.raises(ConfigurationError):
            ExponentialLatency(0.0)


class TestLossModels:
    def test_no_loss(self, rng):
        assert not any(NoLoss().is_lost(rng) for _ in range(100))

    def test_bernoulli_rate(self, rng):
        model = BernoulliLoss(0.3)
        losses = sum(model.is_lost(rng) for _ in range(10000))
        assert losses == pytest.approx(3000, rel=0.1)

    def test_bernoulli_extremes(self, rng):
        assert not BernoulliLoss(0.0).is_lost(rng)
        assert BernoulliLoss(1.0).is_lost(rng)

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.5)


class TestTransport:
    def test_zero_latency_delivery(self, engine):
        inbox = []
        transport = make_transport(engine, inbox)
        transport.send(1, 2, "hello")
        engine.run_until(0.0)
        assert len(inbox) == 1
        message = inbox[0]
        assert (message.source, message.destination, message.payload) == (
            1, 2, "hello",
        )

    def test_latency_delays_delivery(self, engine):
        inbox = []
        transport = make_transport(engine, inbox, latency=ConstantLatency(1.5))
        transport.send(0, 1, "x")
        engine.run_until(1.0)
        assert inbox == []
        engine.run_until(2.0)
        assert len(inbox) == 1

    def test_sent_at_recorded(self, engine):
        inbox = []
        transport = make_transport(engine, inbox, latency=ConstantLatency(1.0))
        engine.schedule_after(2.0, lambda: transport.send(0, 1, "y"))
        engine.run_until(5.0)
        assert inbox[0].sent_at == 2.0

    def test_total_loss_drops_everything(self, engine):
        inbox = []
        transport = make_transport(engine, inbox, loss=BernoulliLoss(1.0))
        for _ in range(10):
            transport.send(0, 1, "z")
        engine.run_until(1.0)
        assert inbox == []
        assert transport.lost_count == 10
        assert transport.sent_count == 10
        assert transport.delivered_count == 0

    def test_counters_consistent(self, engine):
        inbox = []
        transport = make_transport(engine, inbox, loss=BernoulliLoss(0.5))
        for _ in range(200):
            transport.send(0, 1, "w")
        engine.run_until(1.0)
        assert transport.sent_count == 200
        assert transport.lost_count + transport.delivered_count == 200
        assert len(inbox) == transport.delivered_count
