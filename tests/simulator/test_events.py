"""Tests for simulator.events — the deterministic event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulator import EventQueue


class TestOrdering:
    def test_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while queue:
            queue.pop().callback()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.push(1.0, lambda t=tag: order.append(t))
        while queue:
            queue.pop().callback()
        assert order == ["first", "second", "third"]

    def test_nan_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        fired = []
        handle = queue.push(1.0, lambda: fired.append(1))
        handle.cancel()
        assert queue.pop() is None
        assert fired == []

    def test_cancel_middle_event(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("a"))
        handle = queue.push(2.0, lambda: fired.append("b"))
        queue.push(3.0, lambda: fired.append("c"))
        handle.cancel()
        while queue:
            queue.pop().callback()
        assert fired == ["a", "c"]

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        handle.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 2.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue
