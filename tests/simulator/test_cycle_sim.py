"""Tests for the cycle-driven simulator."""

import numpy as np
import pytest

from repro.avg.theory import RATE_SEQ
from repro.core import MaxAggregate, MinAggregate
from repro.errors import ConfigurationError
from repro.simulator.cycle_sim import CycleSimulator
from repro.topology import CompleteTopology


@pytest.fixture
def topo():
    return CompleteTopology(300)


@pytest.fixture
def values(topo):
    return np.random.default_rng(1).normal(5.0, 2.0, topo.n)


class TestBasics:
    def test_size_mismatch_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            CycleSimulator(topo, [1.0, 2.0])

    def test_invalid_loss_rejected(self, topo, values):
        with pytest.raises(ConfigurationError):
            CycleSimulator(topo, values, loss_probability=2.0)

    def test_negative_cycles_rejected(self, topo, values):
        sim = CycleSimulator(topo, values, seed=1)
        with pytest.raises(ConfigurationError):
            sim.run(-1)

    def test_deterministic(self, topo, values):
        a = CycleSimulator(topo, values, seed=5)
        b = CycleSimulator(topo, values, seed=5)
        a.run(5)
        b.run(5)
        assert np.array_equal(a.values, b.values)


class TestAveraging:
    def test_mean_conserved(self, topo, values):
        sim = CycleSimulator(topo, values, seed=2)
        initial = sim.mean()
        sim.run(10)
        assert sim.mean() == pytest.approx(initial, abs=1e-12)

    def test_variance_decays_at_seq_rate(self, topo, values):
        sim = CycleSimulator(topo, values, seed=3)
        result = sim.run(12)
        ratios = result.variance_array[1:] / result.variance_array[:-1]
        assert np.exp(np.log(ratios).mean()) == pytest.approx(RATE_SEQ, rel=0.15)

    def test_exchange_count_full(self, topo, values):
        sim = CycleSimulator(topo, values, seed=4)
        result = sim.run(2)
        assert result.exchange_counts == [topo.n, topo.n]

    def test_trajectory_lengths(self, topo, values):
        result = CycleSimulator(topo, values, seed=5).run(7)
        assert len(result.variances) == 8
        assert len(result.means) == 8
        assert len(result.exchange_counts) == 7


class TestOtherAggregates:
    def test_max_spreads_epidemically(self, topo, values):
        sim = CycleSimulator(topo, values, aggregate=MaxAggregate(), seed=6)
        sim.run(12)
        assert np.all(sim.values == values.max())

    def test_min_spreads(self, topo, values):
        sim = CycleSimulator(topo, values, aggregate=MinAggregate(), seed=7)
        sim.run(12)
        assert np.all(sim.values == values.min())

    def test_max_monotone_per_cycle(self, topo, values):
        sim = CycleSimulator(topo, values, aggregate=MaxAggregate(), seed=8)
        reached = [int((sim.values == values.max()).sum())]
        for _ in range(8):
            sim.run_cycle()
            reached.append(int((sim.values == values.max()).sum()))
        assert all(b >= a for a, b in zip(reached, reached[1:]))


class TestFailures:
    def test_loss_slows_but_preserves_mean(self, topo, values):
        lossless = CycleSimulator(topo, values, seed=9)
        lossy = CycleSimulator(topo, values, loss_probability=0.4, seed=9)
        lossless.run(8)
        lossy.run(8)
        assert lossy.mean() == pytest.approx(lossless.mean(), abs=1e-12)
        assert lossy.variance() > lossless.variance()

    def test_total_loss_freezes_state(self, topo, values):
        sim = CycleSimulator(topo, values, loss_probability=1.0, seed=10)
        result = sim.run(3)
        assert result.exchange_counts == [0, 0, 0]
        assert np.array_equal(sim.values, values)

    def test_crash_removes_nodes(self, topo, values):
        sim = CycleSimulator(topo, values, seed=11)
        sim.crash([0, 1, 2])
        assert sim.alive_count == topo.n - 3
        assert len(sim.values) == topo.n - 3

    def test_crash_out_of_range_rejected(self, topo, values):
        sim = CycleSimulator(topo, values, seed=12)
        with pytest.raises(ConfigurationError):
            sim.crash([topo.n])

    def test_crashed_nodes_excluded_from_convergence(self, topo, values):
        sim = CycleSimulator(topo, values, seed=13)
        sim.crash(list(range(50)))
        sim.run(15)
        survivors_initial_mean = values[50:].mean()
        # converged mean equals the survivors' initial mean (mass of the
        # crashed nodes left before any mixing happened)
        assert sim.mean() == pytest.approx(survivors_initial_mean, abs=1e-9)

    def test_crash_mid_run_biases_mean(self, topo, values):
        sim = CycleSimulator(topo, values, seed=14)
        sim.run(1)
        sim.crash(list(range(100)))
        sim.run(20)
        # after partial mixing the crashed nodes' mass is partly spread,
        # so the surviving mean is generally NOT the survivors' initial mean
        assert sim.variance() < 1e-6  # still converges
