"""Tests for simulator.trace — exchange telemetry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator import ExchangeTrace
from repro.simulator.cycle_sim import CycleSimulator
from repro.core import MeanAggregate
from repro.topology import CompleteTopology


class TestTraceBasics:
    def test_record_and_iterate(self):
        trace = ExchangeTrace()
        trace.record(0.0, 1, 2, 10.0, 20.0, 15.0)
        records = list(trace)
        assert len(records) == 1
        assert records[0].initiator == 1
        assert records[0].value_after == 15.0

    def test_disabled_records_nothing(self):
        trace = ExchangeTrace(enabled=False)
        trace.record(0.0, 1, 2, 1.0, 2.0, 1.5)
        assert len(trace) == 0

    def test_capacity_ring_buffer(self):
        trace = ExchangeTrace(capacity=3)
        for k in range(5):
            trace.record(float(k), k, k + 1, 0.0, 0.0, 0.0)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [r.time for r in trace] == [2.0, 3.0, 4.0]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ExchangeTrace(capacity=0)

    def test_clear(self):
        trace = ExchangeTrace(capacity=1)
        trace.record(0.0, 0, 1, 0.0, 0.0, 0.0)
        trace.record(1.0, 0, 1, 0.0, 0.0, 0.0)
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0


class TestAnalysis:
    def test_per_node_load(self):
        trace = ExchangeTrace()
        trace.record(0.0, 0, 1, 0, 0, 0)
        trace.record(0.0, 0, 2, 0, 0, 0)
        load = trace.per_node_load(3)
        assert load.tolist() == [2, 1, 1]

    def test_load_imbalance(self):
        trace = ExchangeTrace()
        trace.record(0.0, 0, 1, 0, 0, 0)
        trace.record(0.0, 0, 2, 0, 0, 0)
        assert trace.load_imbalance(3) == pytest.approx(2 / (4 / 3))

    def test_load_imbalance_empty_raises(self):
        with pytest.raises(ConfigurationError):
            ExchangeTrace().load_imbalance(3)

    def test_between(self):
        trace = ExchangeTrace()
        for t in (0.0, 1.0, 2.0, 3.0):
            trace.record(t, 0, 1, 0, 0, 0)
        assert len(trace.between(1.0, 3.0)) == 2
        with pytest.raises(ConfigurationError):
            trace.between(3.0, 1.0)

    def test_mass_delta_zero_for_mean_exchanges(self):
        trace = ExchangeTrace()
        trace.record(0.0, 0, 1, 4.0, 8.0, 6.0)
        trace.record(0.0, 2, 3, -1.0, 3.0, 1.0)
        assert trace.mass_delta() == pytest.approx(0.0)

    def test_mass_delta_detects_leak(self):
        trace = ExchangeTrace()
        trace.record(0.0, 0, 1, 4.0, 8.0, 7.0)  # not the midpoint
        assert trace.mass_delta() == pytest.approx(2.0)


class TestIntegrationWithCycleSim:
    def test_cycle_sim_populates_trace(self):
        n = 100
        trace = ExchangeTrace()
        values = np.random.default_rng(1).normal(0, 1, n)
        sim = CycleSimulator(
            CompleteTopology(n), values, aggregate=MeanAggregate(),
            trace=trace, seed=2,
        )
        sim.run(3)
        assert len(trace) == 3 * n
        # every traced exchange is mass-conserving
        assert trace.mass_delta() == pytest.approx(0.0, abs=1e-9)

    def test_traced_load_is_flat_on_complete_graph(self):
        """The §5 claim, measured from telemetry: no performance peaks."""
        n = 300
        trace = ExchangeTrace()
        values = np.random.default_rng(3).normal(0, 1, n)
        sim = CycleSimulator(
            CompleteTopology(n), values, trace=trace, seed=4,
        )
        sim.run(20)
        assert trace.load_imbalance(n) < 1.8

    def test_no_trace_keeps_fast_path(self):
        n = 50
        values = np.random.default_rng(5).normal(0, 1, n)
        sim = CycleSimulator(CompleteTopology(n), values, seed=6)
        sim.run(2)  # must simply work without telemetry
        assert sim.variance() < values.var()
