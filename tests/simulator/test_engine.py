"""Tests for simulator.engine — the discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.simulator import EventDrivenSimulator


class TestScheduling:
    def test_schedule_after_advances_time(self):
        engine = EventDrivenSimulator()
        times = []
        engine.schedule_after(5.0, lambda: times.append(engine.now))
        engine.run_until(10.0)
        assert times == [5.0]
        assert engine.now == 10.0

    def test_schedule_at_absolute(self):
        engine = EventDrivenSimulator()
        times = []
        engine.schedule_at(3.0, lambda: times.append(engine.now))
        engine.run_until(5.0)
        assert times == [3.0]

    def test_past_scheduling_rejected(self):
        engine = EventDrivenSimulator()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventDrivenSimulator().schedule_after(-1.0, lambda: None)

    def test_backwards_horizon_rejected(self):
        engine = EventDrivenSimulator()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.run_until(1.0)


class TestExecution:
    def test_events_beyond_horizon_wait(self):
        engine = EventDrivenSimulator()
        fired = []
        engine.schedule_after(1.0, lambda: fired.append(1))
        engine.schedule_after(9.0, lambda: fired.append(9))
        engine.run_until(5.0)
        assert fired == [1]
        engine.run_until(10.0)
        assert fired == [1, 9]

    def test_cascading_events(self):
        engine = EventDrivenSimulator()
        fired = []

        def first():
            fired.append("first")
            engine.schedule_after(1.0, lambda: fired.append("second"))

        engine.schedule_after(1.0, first)
        engine.run_until(3.0)
        assert fired == ["first", "second"]

    def test_counts(self):
        engine = EventDrivenSimulator()
        for _ in range(4):
            engine.schedule_after(1.0, lambda: None)
        engine.schedule_after(99.0, lambda: None)
        executed = engine.run_until(2.0)
        assert executed == 4
        assert engine.processed_events == 4
        assert engine.pending_events == 1

    def test_max_events_guard(self):
        engine = EventDrivenSimulator()

        def rescheduling():
            engine.schedule_after(0.0, rescheduling)

        engine.schedule_after(0.0, rescheduling)
        with pytest.raises(SimulationError):
            engine.run_until(1.0, max_events=100)

    def test_run_until_idle(self):
        engine = EventDrivenSimulator()
        fired = []
        engine.schedule_after(1.0, lambda: fired.append(1))
        engine.schedule_after(2.0, lambda: fired.append(2))
        executed = engine.run_until_idle()
        assert executed == 2
        assert fired == [1, 2]

    def test_run_until_idle_guard(self):
        engine = EventDrivenSimulator()

        def rescheduling():
            engine.schedule_after(1.0, rescheduling)

        engine.schedule_after(0.0, rescheduling)
        with pytest.raises(SimulationError):
            engine.run_until_idle(max_events=50)

    def test_deterministic_same_time_order(self):
        engine = EventDrivenSimulator()
        order = []
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(1.0, lambda: order.append("b"))
        engine.run_until(1.0)
        assert order == ["a", "b"]
