"""CycleSimulator backend selection through the public API."""

import numpy as np
import pytest

from repro.core import MaxAggregate
from repro.simulator.cycle_sim import CycleSimulator
from repro.simulator.trace import ExchangeTrace
from repro.topology import CompleteTopology


@pytest.fixture
def topo():
    return CompleteTopology(300)


@pytest.fixture
def values(topo):
    return np.random.default_rng(9).normal(5.0, 2.0, topo.n)


class TestBackendSelection:
    def test_auto_resolves_by_size(self, topo, values):
        assert CycleSimulator(topo, values, seed=1).backend_name == "reference"
        big = CompleteTopology(5000)
        sim = CycleSimulator(big, np.zeros(5000), seed=1)
        assert sim.backend_name == "vectorized"

    def test_explicit_backend_honored(self, topo, values):
        sim = CycleSimulator(topo, values, seed=1, backend="vectorized")
        assert sim.backend_name == "vectorized"

    def test_trace_forces_reference(self, topo, values):
        sim = CycleSimulator(
            topo, values, seed=1, backend="vectorized", trace=ExchangeTrace()
        )
        assert sim.backend_name == "reference"


class TestBackendEquality:
    def test_same_seed_same_trajectory(self, topo, values):
        ref = CycleSimulator(topo, values, seed=5, backend="reference")
        vec = CycleSimulator(topo, values, seed=5, backend="vectorized")
        ref_result = ref.run(10)
        vec_result = vec.run(10)
        assert np.array_equal(ref_result.variance_array,
                              vec_result.variance_array)
        assert np.array_equal(ref.all_values, vec.all_values)
        assert ref_result.exchange_counts == vec_result.exchange_counts

    def test_equal_with_loss_and_crash(self, topo, values):
        sims = []
        for backend in ("reference", "vectorized"):
            sim = CycleSimulator(
                topo, values, loss_probability=0.25, seed=6, backend=backend
            )
            sim.run(3)
            sim.crash(range(40))
            sim.run(10)
            sims.append(sim)
        assert np.array_equal(sims[0].all_values, sims[1].all_values)
        assert sims[0].alive_count == sims[1].alive_count

    def test_equal_with_max_aggregate(self, topo, values):
        runs = []
        for backend in ("reference", "vectorized"):
            sim = CycleSimulator(
                topo, values, aggregate=MaxAggregate(), seed=7,
                backend=backend,
            )
            sim.run(10)
            runs.append(sim.all_values)
        assert np.array_equal(runs[0], runs[1])
        assert np.all(runs[0] == values.max())
