"""Integration: failure injection across the stack (the §1.4 concerns)."""

import numpy as np
import pytest

from repro.core import GossipNetwork
from repro.failures import random_crash_plan
from repro.simulator import BernoulliLoss
from repro.simulator.cycle_sim import CycleSimulator
from repro.topology import CompleteTopology, RandomRegularTopology


class TestMessageLossDegradesGracefully:
    @pytest.mark.parametrize("loss", [0.0, 0.1, 0.3])
    def test_convergence_rate_degrades_smoothly(self, loss):
        """Loss probability p slows the per-cycle rate but never breaks
        convergence — each surviving exchange still reduces variance."""
        topo = CompleteTopology(1000)
        values = np.random.default_rng(1).normal(0, 1, 1000)
        sim = CycleSimulator(topo, values, loss_probability=loss, seed=2)
        result = sim.run(10)
        assert result.variance_array[-1] < result.variance_array[0] * 0.01

    def test_higher_loss_is_slower(self):
        topo = CompleteTopology(1000)
        values = np.random.default_rng(3).normal(0, 1, 1000)
        final = {}
        for loss in (0.0, 0.5):
            sim = CycleSimulator(topo, values, loss_probability=loss, seed=4)
            final[loss] = sim.run(8).variance_array[-1]
        assert final[0.5] > final[0.0]


class TestCrashRobustness:
    def test_half_network_crash_survivors_converge(self):
        topo = CompleteTopology(600)
        values = np.random.default_rng(5).normal(20, 5, 600)
        sim = CycleSimulator(topo, values, seed=6)
        sim.run(2)
        plan = random_crash_plan(600, 0.5, at_cycle=2, seed=7)
        sim.crash(plan.crashing_at(2))
        # half of all contact attempts hit dead peers, so allow extra cycles
        sim.run(30)
        assert sim.alive_count == 300
        assert sim.variance() < 1e-6

    def test_crash_biases_mean_proportionally(self):
        """Crashing nodes holding extreme values early in the run shifts
        the converged estimate — the known failure mode of unprotected
        anti-entropy averaging."""
        n = 500
        values = np.zeros(n)
        values[:100] = 100.0  # mass concentrated in the first 100 nodes
        sim = CycleSimulator(CompleteTopology(n), values, seed=8)
        sim.crash(list(range(100)))  # crash them before any mixing
        sim.run(15)
        # all mass left with the crashed nodes
        assert sim.mean() == pytest.approx(0.0, abs=1e-9)

    def test_crash_on_sparse_topology(self):
        topo = RandomRegularTopology(400, 8, seed=9)
        values = np.random.default_rng(10).normal(0, 1, 400)
        sim = CycleSimulator(topo, values, seed=11)
        sim.crash(list(range(0, 400, 10)))  # 10 % crash
        sim.run(25)
        assert sim.variance() < 1e-6


class TestEventDrivenLossAsymmetry:
    def test_mean_drift_grows_with_loss(self):
        """Asymmetric half-exchanges (push delivered, reply lost) leak
        mass; drift should grow with the loss rate."""
        drifts = {}
        for loss in (0.05, 0.4):
            errors = []
            for seed in range(4):
                topo = CompleteTopology(200)
                values = np.random.default_rng(12).normal(10, 4, 200)
                net = GossipNetwork(
                    topo, values, loss=BernoulliLoss(loss), seed=seed
                )
                net.run_cycles(15)
                errors.append(abs(net.approximations().mean() - net.true_mean()))
            drifts[loss] = np.mean(errors)
        assert drifts[0.4] > drifts[0.05] * 0.5  # heavier loss, no smaller drift
