"""Integration: failure and adversary injection across the kernel stack
(the §1.4 concerns), driven entirely through declarative
:class:`Scenario` runs.
"""

import numpy as np
import pytest

from repro.failures import random_crash_plan
from repro.kernel import AdversarySpec, GossipEngine, Scenario, robust_reduce
from repro.topology import CompleteTopology, RandomRegularTopology


def run_engine(scenario, cycles):
    engine = GossipEngine(scenario)
    try:
        return engine, engine.run(cycles)
    finally:
        engine.close()


class TestMessageLossDegradesGracefully:
    @pytest.mark.parametrize("loss", [0.0, 0.1, 0.3])
    def test_convergence_rate_degrades_smoothly(self, loss):
        """Loss probability p slows the per-cycle rate but never breaks
        convergence — each surviving exchange still reduces variance."""
        values = np.random.default_rng(1).normal(0, 1, 1000)
        scenario = Scenario(
            CompleteTopology(1000), values, loss_probability=loss, seed=2
        )
        _, result = run_engine(scenario, 10)
        trajectory = result.variance_array()
        assert trajectory[-1] < trajectory[0] * 0.01

    def test_higher_loss_is_slower(self):
        values = np.random.default_rng(3).normal(0, 1, 1000)
        final = {}
        for loss in (0.0, 0.5):
            scenario = Scenario(
                CompleteTopology(1000), values, loss_probability=loss, seed=4
            )
            final[loss] = run_engine(scenario, 8)[1].variance_array()[-1]
        assert final[0.5] > final[0.0]

    def test_loss_conserves_mass(self):
        """Kernel exchanges are atomic — a lost message cancels the
        whole exchange, so (unlike the event-driven half-exchange
        model) heavy loss cannot leak mass from the AVG estimate."""
        values = np.random.default_rng(12).normal(10, 4, 500)
        scenario = Scenario(
            CompleteTopology(500), values, loss_probability=0.4, seed=13
        )
        engine, _ = run_engine(scenario, 15)
        assert engine.mean() == pytest.approx(values.mean(), rel=1e-12)


class TestCrashRobustness:
    def test_half_network_crash_survivors_converge(self):
        values = np.random.default_rng(5).normal(20, 5, 600)
        engine = GossipEngine(Scenario(CompleteTopology(600), values, seed=6))
        engine.run(2)
        plan = random_crash_plan(600, 0.5, at_cycle=2, seed=7)
        engine.crash(plan.crashing_at(2))
        # half of all contact attempts hit dead peers, so allow extra cycles
        engine.run(30)
        assert engine.alive_count == 300
        assert engine.variance() < 1e-6

    def test_crash_biases_mean_proportionally(self):
        """Crashing nodes holding extreme values early in the run shifts
        the converged estimate — the known failure mode of unprotected
        anti-entropy averaging."""
        n = 500
        values = np.zeros(n)
        values[:100] = 100.0  # mass concentrated in the first 100 nodes
        engine = GossipEngine(Scenario(CompleteTopology(n), values, seed=8))
        engine.crash(list(range(100)))  # crash them before any mixing
        engine.run(15)
        # all mass left with the crashed nodes
        assert engine.mean() == pytest.approx(0.0, abs=1e-9)

    def test_crash_on_sparse_topology(self):
        topology = RandomRegularTopology(400, 8, seed=9)
        values = np.random.default_rng(10).normal(0, 1, 400)
        engine = GossipEngine(Scenario(topology, values, seed=11))
        engine.crash(list(range(0, 400, 10)))  # 10 % crash
        engine.run(25)
        assert engine.variance() < 1e-6


class TestAdversaryIntegration:
    """The AdversarySpec kinds end to end, through plain Scenario runs."""

    N = 500

    def scenario(self, spec, seed=21, **kwargs):
        values = np.random.default_rng(20).normal(10, 4, self.N)
        return Scenario(
            CompleteTopology(self.N),
            values,
            adversary=spec,
            seed=seed,
            **kwargs,
        )

    def test_inject_bias_grows_with_fraction(self):
        """Stubborn value injection poisons honest state, and more
        injectors poison it faster — no read-out trick can undo it."""
        truth = 10.0
        bias = {}
        for fraction in (0.05, 0.2):
            spec = AdversarySpec(kind="inject", fraction=fraction, value=1000.0)
            engine = GossipEngine(self.scenario(spec))
            engine.run(10)
            honest = engine.honest_column()
            bias[fraction] = abs(float(np.median(honest)) - truth)
        assert bias[0.05] > 10.0  # even 5 % injectors wreck the estimate
        assert bias[0.2] > bias[0.05]

    def test_lying_defeats_mean_but_not_median(self):
        """Byzantine responders corrupt only the reported view, which is
        exactly the contamination a robust reduction removes."""
        spec = AdversarySpec(kind="lying", fraction=0.15, value=1000.0)
        engine = GossipEngine(self.scenario(spec))
        engine.run(20)
        reports = engine.reported_column()
        truth = engine.scenario.values.mean()
        assert robust_reduce(reports, "median") == pytest.approx(
            truth, rel=1e-6
        )
        assert robust_reduce(reports, "trimmed") == pytest.approx(
            truth, rel=1e-6
        )
        assert robust_reduce(reports, "mean") > 100.0  # wrecked by the lies

    def test_partition_isolates_both_sides(self):
        """A targeted partition seals the honest/adversarial boundary:
        each side converges internally to its own mean."""
        spec = AdversarySpec(kind="partition", fraction=0.3)
        engine = GossipEngine(self.scenario(spec))
        engine.run(25)
        mask = engine.adversary_mask
        column = engine.column()
        values = engine.scenario.values
        for side in (mask, ~mask):
            # isolation: each block conserves exactly its own mass ...
            assert column[side].mean() == pytest.approx(
                values[side].mean(), rel=1e-9
            )
            # ... and keeps converging internally (slower on the small
            # block: most of its uniform partner draws cross the sealed
            # boundary and are dropped)
            assert column[side].std() < 0.05 * values[side].std()

    def test_eclipse_drags_victims_toward_captors(self):
        """Neighbor capture on a sparse overlay: captured nodes only
        ever mix with adversarial neighbors, so with every adversary
        holding an extreme value the overlay's converged state is
        pulled far off the honest mean."""
        topology = RandomRegularTopology(self.N, 8, seed=30)
        values = np.random.default_rng(20).normal(10, 4, self.N)
        eclipsed = Scenario(
            topology,
            values,
            adversary=AdversarySpec(kind="eclipse", fraction=0.2),
            seed=21,
        )
        engine = GossipEngine(eclipsed)
        engine.run(25)
        # partner draws of captured nodes all hit the same captor, so
        # mixing is crippled: the spread across nodes stays far above
        # the uncaptured run's (which is at ~1e-7 by cycle 25)
        baseline = GossipEngine(Scenario(topology, values, seed=21))
        baseline.run(25)
        assert engine.variance() > 1e3 * baseline.variance()
