"""Integration: empirical AVG convergence matches the §3.3 theory.

These are the paper's headline quantitative claims, verified end to end
(value vector + pair selector + algorithm + rate fitting).
"""

import numpy as np
import pytest

from repro.analysis import geometric_mean, replicate
from repro.avg import (
    GetPairPerfectMatching,
    GetPairPMRand,
    GetPairRand,
    GetPairSeq,
    RATE_PM,
    RATE_RAND,
    RATE_SEQ,
    ValueVector,
    cycles_until_threshold,
    run_avg,
)
from repro.topology import CompleteTopology, RandomRegularTopology

N = 1000
CYCLES = 12


def measure_rate(selector_factory, topology, runs=5, seed=100):
    def one_run(rng):
        vec = ValueVector.gaussian(topology.n, seed=rng)
        result = run_avg(vec, selector_factory(topology), CYCLES, seed=rng)
        return result.geometric_mean_reduction()

    return geometric_mean(replicate(one_run, runs=runs, seed=seed).outputs)


@pytest.fixture(scope="module")
def complete():
    return CompleteTopology(N)


class TestRatesOnCompleteTopology:
    def test_pm_rate(self, complete):
        rate = measure_rate(GetPairPerfectMatching, complete)
        assert rate == pytest.approx(RATE_PM, rel=0.03)

    def test_rand_rate(self, complete):
        rate = measure_rate(GetPairRand, complete)
        assert rate == pytest.approx(RATE_RAND, rel=0.05)

    def test_seq_rate(self, complete):
        rate = measure_rate(GetPairSeq, complete)
        assert rate == pytest.approx(RATE_SEQ, rel=0.05)

    def test_pmrand_rate(self, complete):
        rate = measure_rate(GetPairPMRand, complete)
        assert rate == pytest.approx(RATE_SEQ, rel=0.05)

    def test_empirical_ordering(self, complete):
        """PM < SEQ < RAND (§3.3.3 comparison)."""
        pm = measure_rate(GetPairPerfectMatching, complete)
        seq = measure_rate(GetPairSeq, complete)
        rand = measure_rate(GetPairRand, complete)
        assert pm < seq < rand


class TestRatesOnRandomTopology:
    """Figure 3: the 20-regular random overlay converges slightly slower
    than fully connected, but stays in the same regime."""

    @pytest.fixture(scope="class")
    def regular(self):
        return RandomRegularTopology(N, 20, seed=55)

    def test_seq_close_to_theory(self, regular):
        rate = measure_rate(GetPairSeq, regular)
        assert rate == pytest.approx(RATE_SEQ, rel=0.15)

    def test_rand_close_to_theory(self, regular):
        rate = measure_rate(GetPairRand, regular)
        assert rate == pytest.approx(RATE_RAND, rel=0.15)

    def test_random_topology_no_faster_than_complete(self, regular):
        complete_rate = measure_rate(GetPairSeq, CompleteTopology(N))
        regular_rate = measure_rate(GetPairSeq, regular)
        assert regular_rate > complete_rate * 0.98


class TestScaleInvariance:
    """Figure 3(a): convergence is independent of network size."""

    @pytest.mark.parametrize("n", [100, 1000, 4000])
    def test_seq_first_cycle_reduction(self, n):
        def one_run(rng):
            vec = ValueVector.gaussian(n, seed=rng)
            result = run_avg(vec, GetPairSeq(CompleteTopology(n)), 1, seed=rng)
            return result.cycles[0].reduction

        rate = np.mean(replicate(one_run, runs=8, seed=n).outputs)
        assert rate == pytest.approx(RATE_SEQ, rel=0.12)


class TestEfficiencyClaim:
    def test_999_reduction_within_seven_cycles_rand(self):
        """§5: 'the variance over the network will decrease 99.9% in
        ln 1000 ≈ 7 cycles of AVG' with GETPAIR_RAND."""
        def one_run(rng):
            vec = ValueVector.gaussian(2000, seed=rng)
            result = run_avg(
                vec, GetPairRand(CompleteTopology(2000)), 10, seed=rng
            )
            return cycles_until_threshold(result.variances, 1e-3)

        cycles = replicate(one_run, runs=5, seed=7).outputs
        assert all(c != -1 for c in cycles)
        assert np.mean(cycles) <= 8  # 7 ± stochastic slack
