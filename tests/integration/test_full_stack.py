"""Integration: the complete deployment stack the paper sketches.

Failure detection ([15]) + membership + anti-entropy aggregation, and
event-driven epoch counting — the pieces §1.2/§4 describe, composed.
"""

import numpy as np
import pytest

from repro.core.epoch_protocol import EpochGossipNetwork
from repro.core import MeanAggregate, estimate_network_size
from repro.membership import GossipFailureDetector


class TestDetectorFedAggregation:
    def test_aggregation_over_trusted_peers(self):
        """Nodes gossip only with peers their failure detector trusts;
        after a crash the survivors' aggregation keeps converging and
        never blocks on dead peers."""
        n = 120
        rng = np.random.default_rng(1)
        detector = GossipFailureDetector(n, suspicion_cycles=10, seed=2)
        detector.run(15)  # warm up heartbeats
        crashed = list(range(0, n, 6))  # ~17 %
        detector.crash(crashed)
        detector.run(30)  # let everyone suspect the crashed set
        assert detector.detection_complete(crashed)

        crashed_set = set(crashed)
        values = {k: float(rng.normal(10, 3)) for k in range(n)
                  if k not in crashed_set}
        truth = float(np.mean(list(values.values())))
        aggregate = MeanAggregate()
        for _ in range(25):
            for node in list(values):
                trusted = [
                    p for p in detector.trusted_peers(node)
                    if p not in crashed_set
                ]
                partner = trusted[int(rng.integers(0, len(trusted)))]
                combined = aggregate.combine(values[node], values[partner])
                values[node] = combined
                values[partner] = combined
        survivors = np.asarray(list(values.values()))
        assert survivors.mean() == pytest.approx(truth, abs=1e-9)
        assert survivors.std() < 1e-6

    def test_detector_never_starves_survivors(self):
        n = 60
        detector = GossipFailureDetector(n, suspicion_cycles=10, seed=3)
        detector.run(15)
        detector.crash(list(range(30)))
        detector.run(40)
        for node in range(30, n):
            trusted = detector.trusted_peers(node)
            assert len(trusted) >= 25  # the other survivors


class TestEventDrivenCounting:
    def test_size_estimation_over_epoch_protocol(self):
        """§4 counting on the asynchronous stack: node 0 contributes 1,
        everyone else 0; each epoch's converged output is 1/N."""
        n = 200

        def provider(node_id, time):
            return 1.0 if node_id == 0 else 0.0

        net = EpochGossipNetwork(n, provider, cycles_per_epoch=30, seed=4)
        net.run_epochs(2.05)
        for epoch in range(2):
            estimates = net.epoch_estimates(epoch)
            assert len(estimates) == n
            sizes = [estimate_network_size(max(x, 1e-12)) for x in estimates]
            assert np.mean(sizes) == pytest.approx(n, rel=1e-3)
