"""Paper-scale spot checks.

Full paper-scale sweeps live in the benchmarks (REPRO_PAPER_SCALE=1);
these tests verify the headline size-independence claim at the paper's
actual N = 100 000 with single cycles, which is cheap enough for the
regular suite.
"""

import numpy as np
import pytest

from repro.avg import (
    GetPairRand,
    GetPairSeq,
    RATE_RAND,
    RATE_SEQ,
    ValueVector,
    run_avg,
)
from repro.topology import CompleteTopology

N_PAPER = 100_000


@pytest.fixture(scope="module")
def paper_topology():
    return CompleteTopology(N_PAPER)


class TestPaperScaleSingleCycle:
    def test_seq_reduction_at_100k(self, paper_topology):
        vector = ValueVector.gaussian(N_PAPER, seed=1)
        result = run_avg(vector, GetPairSeq(paper_topology), 1, seed=2)
        assert result.cycles[0].reduction == pytest.approx(RATE_SEQ, rel=0.03)

    def test_rand_reduction_at_100k(self, paper_topology):
        vector = ValueVector.gaussian(N_PAPER, seed=3)
        result = run_avg(vector, GetPairRand(paper_topology), 1, seed=4)
        assert result.cycles[0].reduction == pytest.approx(RATE_RAND, rel=0.03)

    def test_mean_conserved_at_100k(self, paper_topology):
        vector = ValueVector.gaussian(N_PAPER, mean=7.0, seed=5)
        initial = vector.mean
        run_avg(vector, GetPairSeq(paper_topology), 1, seed=6)
        assert vector.mean == pytest.approx(initial, abs=1e-10)

    def test_phi_mean_at_100k(self, paper_topology):
        selector = GetPairSeq(paper_topology)
        pairs = selector.cycle_pairs(np.random.default_rng(7))
        phi = selector.phi_counts(pairs)
        assert phi.mean() == pytest.approx(2.0)
        assert phi.min() >= 1  # every node initiates
