"""Integration: the deployed protocol layers reproduce the AVG theory.

The cycle-driven simulator, the event-driven network and the abstract
AVG algorithm are three implementations of the same protocol; their
convergence behavior must agree with each other and with §3.
"""

import numpy as np
import pytest

from repro.avg import RATE_SEQ, fit_geometric_rate
from repro.core import GossipNetwork, MeanAggregate
from repro.membership import NewscastMembership
from repro.simulator.cycle_sim import CycleSimulator
from repro.topology import CompleteTopology, RandomRegularTopology


class TestCycleSimMatchesTheory:
    def test_rate_on_complete(self):
        topo = CompleteTopology(2000)
        values = np.random.default_rng(1).normal(0, 1, 2000)
        result = CycleSimulator(topo, values, seed=2).run(12)
        rate = fit_geometric_rate(result.variance_array)
        assert rate == pytest.approx(RATE_SEQ, rel=0.1)

    def test_rate_on_20_regular(self):
        topo = RandomRegularTopology(2000, 20, seed=3)
        values = np.random.default_rng(1).normal(0, 1, 2000)
        result = CycleSimulator(topo, values, seed=4).run(12)
        rate = fit_geometric_rate(result.variance_array)
        # slightly slower than 1/(2*sqrt(e)), but within 20 %
        assert rate == pytest.approx(RATE_SEQ, rel=0.2)


class TestEventDrivenMatchesCycleDriven:
    def test_equal_convergence_horizon(self):
        """Both simulators reach comparable variance after the same
        number of (expected) cycles."""
        n, cycles = 400, 10
        values = np.random.default_rng(5).normal(10, 3, n)
        cycle_sim = CycleSimulator(CompleteTopology(n), values, seed=6)
        cycle_sim.run(cycles)
        event_net = GossipNetwork(CompleteTopology(n), values, seed=6)
        event_net.run_cycles(cycles)
        cycle_var = cycle_sim.variance()
        event_var = event_net.variance()
        assert cycle_var < 1e-4
        assert event_var < 1e-4
        # same order of magnitude (within 100x, both tiny)
        ratio = max(cycle_var, 1e-300) / max(event_var, 1e-300)
        assert 1e-3 < ratio < 1e3


class TestAggregationOverNewscast:
    def test_averaging_over_gossip_membership(self):
        """The full stack the paper sketches: a peer-sampling service
        supplies partners, aggregation converges on top of it."""
        n = 300
        membership = NewscastMembership(n, view_size=15, seed=7)
        rng = np.random.default_rng(8)
        values = rng.normal(50.0, 10.0, n).tolist()
        true_mean = float(np.mean(values))
        aggregate = MeanAggregate()
        for _ in range(30):
            membership.advance_cycle(rng)
            for node in range(n):
                partner = membership.random_partner(node, rng)
                combined = aggregate.combine(values[node], values[partner])
                values[node] = combined
                values[partner] = combined
        values = np.asarray(values)
        assert values.mean() == pytest.approx(true_mean, abs=1e-9)
        assert values.var(ddof=1) < 1e-8
        assert np.abs(values - true_mean).max() < 1e-3
