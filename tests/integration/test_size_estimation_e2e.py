"""Integration: the Figure 4 scenario end to end (scaled down)."""

import numpy as np
import pytest

from repro.core import SizeEstimationConfig, SizeEstimationExperiment
from repro.failures import OscillatingChurn


@pytest.fixture(scope="module")
def figure4_run():
    """A 1/100-scale Figure 4: size oscillates 900–1100, fluctuation 1
    node per cycle, epoch = 30 cycles, 300 cycles total."""
    config = SizeEstimationConfig(
        cycles=300,
        cycles_per_epoch=30,
        initial_size=1000,
        expected_leaders=1.0,
        seed=42,
    )
    churn = OscillatingChurn(1000, 100, 300, fluctuation=1)
    experiment = SizeEstimationExperiment(config, churn=churn)
    experiment.run()
    return experiment


class TestFigure4Shape:
    def test_one_report_per_epoch(self, figure4_run):
        assert len(figure4_run.reports) == 10

    def test_estimates_track_size(self, figure4_run):
        for report in figure4_run.reports:
            assert report.relative_error < 0.15

    def test_estimate_lags_by_one_epoch(self, figure4_run):
        """'the curve of estimates is similar to the actual size curve,
        only translated by an epoch': end-of-epoch estimates match the
        epoch-START size better than the epoch-end size when they differ."""
        better_start = 0
        comparisons = 0
        for report in figure4_run.reports:
            if report.size_at_start == report.size_at_end:
                continue
            comparisons += 1
            err_start = abs(report.estimate_mean - report.size_at_start)
            err_end = abs(report.estimate_mean - report.size_at_end)
            if err_start <= err_end:
                better_start += 1
        assert comparisons > 0
        assert better_start >= comparisons * 0.7

    def test_error_bars_bracket_mean(self, figure4_run):
        for report in figure4_run.reports:
            assert report.estimate_min <= report.estimate_mean <= report.estimate_max

    def test_size_trace_oscillates(self, figure4_run):
        trace = np.asarray(figure4_run.size_trace)
        assert trace.max() >= 1080
        assert trace.min() <= 920

    def test_oscillation_recovered_from_estimates(self, figure4_run):
        estimates = np.array([r.estimate_mean for r in figure4_run.reports])
        assert estimates.max() > estimates.min() * 1.1  # sees the swing
